"""Global branch/path history with TAGE-style incremental folding.

MASCOT (Sec. IV-B of the paper) indexes each of its tables with a hash of the
load PC and an increasing number of global-history bits: one bit per
conditional branch (taken / not-taken) and five folded target bits per
indirect branch.  PHAST, NoSQ's path-dependent table and the branch
predictors use the same substrate.

Folding a long history down to an index width on every lookup is O(history
length); real TAGE hardware instead keeps *folded registers* that are updated
incrementally as bits are shifted in.  We implement both: the incremental
registers are used on the hot path and the naive recomputation
(:meth:`GlobalHistory.fold_snapshot`) is kept as a test oracle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from .bitops import fold_bits, mask

__all__ = ["FoldedRegister", "GlobalHistory", "PathHistory", "INDIRECT_TARGET_BITS"]

#: Number of folded target bits contributed by an indirect branch (Sec. IV-B:
#: "for indirect branches we fold the target to 5 bits").
INDIRECT_TARGET_BITS = 5


class FoldedRegister:
    """Incrementally-folded view of the most recent ``length`` history bits.

    The register holds ``fold_bits(history[:length], length, width)`` at all
    times; :meth:`update` is O(1) per inserted history bit.
    """

    __slots__ = ("length", "width", "value", "_evict_shift")

    def __init__(self, length: int, width: int):
        if length < 0:
            raise ValueError(f"history length must be >= 0, got {length}")
        if width <= 0:
            raise ValueError(f"fold width must be positive, got {width}")
        self.length = length
        self.width = width
        self.value = 0
        # Bit position (within the folded register) where the bit leaving the
        # history window lands after length/width folds.
        self._evict_shift = length % width if length else 0

    def update(self, new_bit: int, evicted_bit: int) -> None:
        """Shift ``new_bit`` into the window; ``evicted_bit`` falls out."""
        if self.length == 0:
            return
        value = (self.value << 1) | (new_bit & 1)
        # Fold the carry-out of the shift back into bit 0.
        value ^= value >> self.width
        value &= mask(self.width)
        # Cancel the contribution of the bit that left the window.
        if evicted_bit:
            value ^= 1 << self._evict_shift
            # The eviction position may itself be the top bit; keep in range.
            value &= mask(self.width)
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return (
            f"FoldedRegister(length={self.length}, width={self.width}, "
            f"value={self.value:#x})"
        )


class GlobalHistory:
    """A bounded global-history bit vector plus attached folded registers.

    Conditional branches contribute one bit; indirect branches contribute
    :data:`INDIRECT_TARGET_BITS` folded bits of their target address.  The
    most recent bit is logically at position 0.
    """

    def __init__(self, max_bits: int = 1024):
        if max_bits <= 0:
            raise ValueError("max_bits must be positive")
        self.max_bits = max_bits
        # _bits[0] is the most recent history bit.
        self._bits: Deque[int] = deque([0] * max_bits, maxlen=max_bits)
        self._folds: Dict[Tuple[int, int], FoldedRegister] = {}

    # -- fold management -----------------------------------------------------

    def attach_fold(self, length: int, width: int) -> FoldedRegister:
        """Return (creating if necessary) the folded register for a window.

        Registers are shared: two tables requesting the same
        ``(length, width)`` observe the same object, mirroring hardware where
        one physical folded register serves identical index functions.
        """
        if length > self.max_bits:
            raise ValueError(
                f"history window {length} exceeds tracked history {self.max_bits}"
            )
        key = (length, width)
        reg = self._folds.get(key)
        if reg is None:
            reg = FoldedRegister(length, width)
            # Bring the new register up to date with the current contents.
            reg.value = self.fold_snapshot(length, width)
            self._folds[key] = reg
        return reg

    # -- updates ---------------------------------------------------------------

    def _push_bit(self, bit: int) -> None:
        bit &= 1
        for reg in self._folds.values():
            evicted = self._bits[reg.length - 1] if reg.length else 0
            reg.update(bit, evicted)
        self._bits.appendleft(bit)

    def push_conditional(self, taken: bool) -> None:
        """Record a conditional branch outcome (1 bit)."""
        self._push_bit(1 if taken else 0)

    def push_indirect(self, target: int) -> None:
        """Record an indirect branch: 5 folded bits of the target address."""
        folded = fold_bits(target, max(target.bit_length(), 1), INDIRECT_TARGET_BITS)
        for i in range(INDIRECT_TARGET_BITS - 1, -1, -1):
            self._push_bit((folded >> i) & 1)

    def reset(self) -> None:
        """Clear all history bits and folded registers."""
        self._bits = deque([0] * self.max_bits, maxlen=self.max_bits)
        for reg in self._folds.values():
            reg.reset()

    # -- reads -----------------------------------------------------------------

    def bits(self, length: int) -> List[int]:
        """Return the most recent ``length`` bits, newest first."""
        if length > self.max_bits:
            raise ValueError(f"requested {length} bits, only {self.max_bits} tracked")
        out = []
        it = iter(self._bits)
        for _ in range(length):
            out.append(next(it))
        return out

    def as_int(self, length: int) -> int:
        """Pack the most recent ``length`` bits into an int (newest = LSB... bit 0)."""
        value = 0
        for i, bit in enumerate(self.bits(length)):
            value |= bit << i
        return value

    def fold_snapshot(self, length: int, width: int) -> int:
        """Recompute the fold from scratch (the slow, obviously-correct path).

        :class:`FoldedRegister` inserts new bits at position 0 and shifts
        older bits upward with wraparound, so a bit of age ``k`` (newest has
        age 0) contributes at position ``k % width``.  That is exactly
        ``fold_bits`` applied to the age-indexed bit vector.
        """
        if length == 0 or width <= 0:
            return 0
        history = 0
        for age, bit in enumerate(self.bits(length)):
            history |= bit << age
        return fold_bits(history, length, width)

    def __repr__(self) -> str:
        head = "".join(str(b) for b in self.bits(min(16, self.max_bits)))
        return f"GlobalHistory(newest16={head}, folds={len(self._folds)})"


class PathHistory:
    """Fixed-width register of low PC bits of recent branches.

    IDist (Perais et al.) combines 16 bits of path history with the global
    branch history; MASCOT's index hash does the same (Fig. 3: "folding the
    load PC and increasing lengths of the global branch and path history").
    """

    __slots__ = ("width", "value", "_bits_per_branch")

    def __init__(self, width: int = 16, bits_per_branch: int = 2):
        if width <= 0:
            raise ValueError("path history width must be positive")
        if bits_per_branch <= 0:
            raise ValueError("bits_per_branch must be positive")
        self.width = width
        self.value = 0
        self._bits_per_branch = bits_per_branch

    def push(self, pc: int) -> None:
        """Shift in the low bits of a branch PC."""
        chunk = (pc >> 1) & mask(self._bits_per_branch)
        self.value = ((self.value << self._bits_per_branch) | chunk) & mask(self.width)

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"PathHistory(width={self.width}, value={self.value:#x})"
