"""Setup shim.

This environment has no network access and no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build the editable wheel.
``python setup.py develop`` (or ``pip install .`` for a regular install)
works with the stock setuptools available offline.  All real metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
