"""Reproduction regression tests.

These assert the paper's headline *relations* on a reduced grid (four
contrasting benchmarks, short traces) so any refactoring that silently
breaks a result the repository exists to demonstrate fails CI.  Full-scale
numbers live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig8_mispredictions,
    run_ipc_suite,
)

BENCHES = ["perlbench1", "gcc4", "lbm", "exchange2"]
N = 25_000


@pytest.fixture(scope="module")
def ipc_suite():
    return run_ipc_suite(
        ["nosq", "phast", "mascot", "mascot-mdp", "store-sets",
         "perfect-mdp-smb", "tage-no-nd"],
        BENCHES, N,
    )


class TestFig7Relations:
    def test_mascot_beats_phast(self, ipc_suite):
        assert ipc_suite.geomean_speedup_over("mascot", "phast") > 0.5

    def test_mascot_beats_nosq(self, ipc_suite):
        assert ipc_suite.geomean_speedup_over("mascot", "nosq") > 1.0

    def test_mascot_beats_perfect_mdp(self, ipc_suite):
        assert ipc_suite.geomean("mascot") > 1.0

    def test_nosq_below_perfect_mdp(self, ipc_suite):
        assert ipc_suite.geomean("nosq") < 1.0

    def test_ceiling_above_mascot(self, ipc_suite):
        assert (ipc_suite.geomean("perfect-mdp-smb")
                >= ipc_suite.geomean("mascot"))


class TestFig9Relations:
    def test_mdp_only_mascot_beats_store_sets(self, ipc_suite):
        assert ipc_suite.geomean_speedup_over(
            "mascot-mdp", "store-sets") > 0.5

    def test_mdp_only_mascot_at_least_phast(self, ipc_suite):
        assert ipc_suite.geomean_speedup_over("mascot-mdp", "phast") > -0.1

    def test_phast_within_a_few_percent_of_perfect(self, ipc_suite):
        """Paper: PHAST generally falls within 93-99% of perfect MDP."""
        assert 0.93 < ipc_suite.geomean("phast") <= 1.01


class TestFig11Relations:
    def test_ablation_below_mascot(self, ipc_suite):
        assert (ipc_suite.geomean("tage-no-nd")
                < ipc_suite.geomean("mascot"))


class TestFig8Relations:
    @pytest.fixture(scope="class")
    def fig8(self):
        return fig8_mispredictions(BENCHES, N)

    def test_mascot_fewest_total(self, fig8):
        assert fig8.totals["mascot"] < fig8.totals["phast"]
        assert fig8.totals["mascot"] < fig8.totals["nosq"]

    def test_false_dependencies_collapse(self, fig8):
        """Paper: -91% false dependencies vs PHAST; we require >70% at
        reduced scale."""
        assert (fig8.false_dependencies["mascot"]
                < 0.3 * fig8.false_dependencies["phast"])

    def test_speculative_errors_reduced(self, fig8):
        assert (fig8.speculative_errors["mascot"]
                < fig8.speculative_errors["phast"])

    def test_nosq_dominated_by_false_dependencies(self, fig8):
        assert (fig8.false_dependencies["nosq"]
                > fig8.speculative_errors["nosq"])


class TestPerBenchmarkCharacter:
    def test_perlbench_gains_most(self, ipc_suite):
        """Fig. 7: the dependence-rich interpreter benchmark shows the
        largest MASCOT gain; exchange2 barely moves."""
        normalised = ipc_suite.normalised("mascot")
        assert normalised["perlbench1"] > normalised["exchange2"]

    def test_exchange2_insensitive(self, ipc_suite):
        normalised = ipc_suite.normalised("mascot")
        assert abs(normalised["exchange2"] - 1.0) < 0.02
