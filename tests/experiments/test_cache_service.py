"""Tests for the shared result-cache service and its client.

The invariant under test everywhere: moving cache traffic over the wire
never changes a number.  Every failure mode — unreachable server, server
restart, torn/stalled/corrupt replies, rejected uploads — degrades to a
cache miss or a skipped store, both of which recompute bit-identical
results.
"""

import socket
import threading
import time

import pytest

from repro.core.config import GOLDEN_COVE
from repro.experiments.backends import (
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.experiments.cache_service import (
    CACHE_URL_ENV,
    NetworkCacheClient,
    cache_url_from_env,
    is_cache_url,
    parse_cache_url,
    probe_cache_server,
    serve_cache,
)
from repro.common.hashing import stable_digest
from repro.experiments.parallel import CellSpec, execute_cells, resolve_cache
from repro.experiments.result_cache import (
    ResultCache,
    cell_key,
    encode_result,
)

from .test_result_cache import _sample_accuracy_result


class _Server:
    """One in-thread ``serve_cache`` with a deterministic lifecycle."""

    def __init__(self, directory, tmp_path, port=0):
        self.directory = directory
        self.stop = threading.Event()
        ready = tmp_path / f"cache-{port}-{id(self)}.ready"
        self.thread = threading.Thread(
            target=serve_cache,
            kwargs=dict(port=port, directory=directory,
                        ready_file=str(ready), stop=self.stop, quiet=True),
            daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while not ready.exists():
            assert time.monotonic() < deadline, "cache server never ready"
            time.sleep(0.01)
        host, port_text = ready.read_text().strip().rsplit(":", 1)
        self.host, self.port = host, int(port_text)

    @property
    def url(self):
        return f"tcp://{self.host}:{self.port}"

    def shutdown(self):
        self.stop.set()
        self.thread.join(timeout=10)
        assert not self.thread.is_alive()


@pytest.fixture
def server(tmp_path):
    handle = _Server(tmp_path / "served", tmp_path)
    yield handle
    handle.shutdown()


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


KEY = "a" * 64


# ------------------------------------------------------------ URL plumbing

class TestUrlPlumbing:
    def test_is_cache_url(self):
        assert is_cache_url("tcp://h:1")
        assert not is_cache_url("/some/dir")
        assert not is_cache_url("relative/dir")

    def test_parse_cache_url(self):
        assert parse_cache_url("tcp://h:9001") == ("h", 9001)
        assert parse_cache_url("tcp://[::1]:9001") == ("::1", 9001)

    @pytest.mark.parametrize("bad", ["http://h:1", "tcp://h:0",
                                     "tcp://h:x", "tcp://h"])
    def test_rejects_bad_urls(self, bad):
        with pytest.raises(ValueError):
            parse_cache_url(bad)

    def test_env_selection(self, monkeypatch):
        monkeypatch.delenv(CACHE_URL_ENV, raising=False)
        assert cache_url_from_env() is None
        monkeypatch.setenv(CACHE_URL_ENV, "tcp://h:1")
        assert cache_url_from_env() == "tcp://h:1"

    def test_client_normalises_bare_endpoint(self, tmp_path):
        client = NetworkCacheClient("h:9001", fallback_directory=tmp_path)
        assert client.url == "tcp://h:9001"
        assert (client.host, client.port) == ("h", 9001)


# ------------------------------------------------------- server round trip

class TestServerRoundTrip:
    def test_store_then_load_hit(self, server, tmp_path):
        client = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "local")
        try:
            original = _sample_accuracy_result()
            assert client.load(KEY) is None
            client.store(KEY, original)
            assert client.contains(KEY)
            loaded = client.load(KEY)
            assert loaded.to_dict() == original.to_dict()
            assert (client.misses, client.stores, client.hits) == (1, 1, 1)
            assert client.rejected_stores == 0
        finally:
            client.close()

    def test_entry_shared_across_clients(self, server, tmp_path):
        writer = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "w")
        reader = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "r")
        try:
            original = _sample_accuracy_result()
            writer.store(KEY, original)
            assert reader.load(KEY).to_dict() == original.to_dict()
        finally:
            writer.close()
            reader.close()

    def test_entry_lands_in_served_directory(self, server, tmp_path):
        client = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "local")
        try:
            client.store(KEY, _sample_accuracy_result())
        finally:
            client.close()
        # The server's on-disk entry is a plain schema-v2 cache file:
        # a local ResultCache opened on the directory verifies and loads
        # it, so server-side and filesystem sharing are interchangeable.
        local = ResultCache(server.directory)
        assert local.load(KEY) is not None

    def test_probe_and_stats(self, server, tmp_path):
        client = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "local")
        try:
            client.store(KEY, _sample_accuracy_result())
            client.load(KEY)
        finally:
            client.close()
        stats = probe_cache_server(server.host, server.port)
        counters = stats["counters"]
        assert counters["server_stores"] == 1
        assert counters["loads"] >= 1
        assert stats["directory"] == str(server.directory)

    def test_probe_writable_none_when_reachable(self, server, tmp_path):
        client = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "local")
        try:
            assert client.probe_writable() is None
        finally:
            client.close()


# ----------------------------------------------- server-side verification

def _raw_session(server):
    sock = socket.create_connection((server.host, server.port), timeout=5.0)
    sock.settimeout(5.0)
    send_frame(sock, {"type": "hello", "version": PROTOCOL_VERSION,
                      "role": "cache-client"})
    hello = recv_frame(sock)
    assert hello["role"] == "cache-server"
    return sock


class TestServerSideVerification:
    def test_store_with_wrong_digest_is_rejected(self, server):
        encoded = encode_result(_sample_accuracy_result())
        sock = _raw_session(server)
        try:
            send_frame(sock, {"type": "store", "key": KEY,
                              "result": encoded, "digest": "0" * 64})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["type"] == "stored" and reply["ok"] is False
        assert "digest" in reply["error"]
        assert not ResultCache(server.directory).contains(KEY)

    def test_store_of_undecodable_result_is_rejected(self, server):
        payload = {"kind": "mystery", "data": {}}
        sock = _raw_session(server)
        try:
            send_frame(sock, {"type": "store", "key": KEY,
                              "result": payload,
                              "digest": stable_digest(payload)})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["ok"] is False
        assert not ResultCache(server.directory).contains(KEY)

    def test_client_counts_rejected_store(self, server, tmp_path,
                                          monkeypatch):
        import repro.experiments.cache_service as cache_service

        client = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "local")
        # Sabotage the upload in flight, after the client computed its
        # digest (the in-process server shares the module, so patching
        # the digest function itself would fool both sides equally).
        real_send = cache_service.send_frame

        def corrupting_send(sock, frame, *args, **kwargs):
            if frame.get("type") == "store":
                frame = dict(frame, digest="f" * 64)
            return real_send(sock, frame, *args, **kwargs)

        monkeypatch.setattr(cache_service, "send_frame", corrupting_send)
        try:
            client.store(KEY, _sample_accuracy_result())
        finally:
            client.close()
        assert client.rejected_stores == 1
        assert client.stores == 0
        assert not ResultCache(server.directory).contains(KEY)

    def test_unknown_request_type_is_answered_not_fatal(self, server):
        sock = _raw_session(server)
        try:
            send_frame(sock, {"type": "mystery"})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            # The session survives: a follow-up probe still answers.
            send_frame(sock, {"type": "probe", "key": KEY})
            assert recv_frame(sock)["type"] == "probed"
        finally:
            sock.close()

    def test_corrupt_disk_entry_is_quarantined_served_as_miss(
            self, server, tmp_path):
        client = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "local")
        try:
            client.store(KEY, _sample_accuracy_result())
            entry = ResultCache(server.directory).path_for(KEY)
            entry.write_text("garbage {{{")
            assert client.load(KEY) is None
            assert not entry.exists()
            quarantined = (ResultCache(server.directory).quarantine_dir
                           / entry.name)
            assert quarantined.read_text() == "garbage {{{"
        finally:
            client.close()


# ------------------------------------------------- unreachable + fallback

class TestFallback:
    def test_unreachable_server_probe_reports_error(self, tmp_path):
        client = NetworkCacheClient(f"tcp://127.0.0.1:{_free_port()}",
                                    fallback_directory=tmp_path,
                                    connect_timeout=0.5)
        try:
            assert client.probe_writable() is not None
        finally:
            client.close()

    def test_read_only_fallback_serves_local_hits(self, tmp_path):
        local = ResultCache(tmp_path / "warm")
        original = _sample_accuracy_result()
        local.store(KEY, original)
        client = NetworkCacheClient(f"tcp://127.0.0.1:{_free_port()}",
                                    fallback_directory=tmp_path / "warm",
                                    connect_timeout=0.5,
                                    reconnect_cooldown=30.0)
        client.read_only = True  # what resolve_cache does on probe failure
        try:
            loaded = client.load(KEY)
            assert loaded.to_dict() == original.to_dict()
            assert client.fallback_hits == 1
            client.store("b" * 64, original)  # skipped, not an error
            assert client.stores == 0
            assert not local.contains("b" * 64)
        finally:
            client.close()

    def test_resolve_cache_degrades_with_one_warning(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fallback"))
        url = f"tcp://127.0.0.1:{_free_port()}"
        with pytest.warns(RuntimeWarning, match="falling back to read-only"):
            store = resolve_cache(url)
        try:
            assert isinstance(store, NetworkCacheClient)
            assert store.read_only
        finally:
            store.close()

    def test_resolve_cache_true_uses_env_url(self, server, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv(CACHE_URL_ENV, server.url)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local"))
        store = resolve_cache(True)
        try:
            assert isinstance(store, NetworkCacheClient)
            assert store.url == server.url
            assert not store.read_only
        finally:
            store.close()

    def test_wrong_peer_is_fatal_not_retried(self, tmp_path):
        from repro.experiments.worker import serve as serve_worker

        stop = threading.Event()
        ready = tmp_path / "worker.ready"
        thread = threading.Thread(
            target=serve_worker,
            kwargs=dict(port=0, ready_file=str(ready), stop=stop,
                        quiet=True),
            daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while not ready.exists():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        host, port = ready.read_text().strip().rsplit(":", 1)
        client = NetworkCacheClient(f"tcp://{host}:{port}",
                                    fallback_directory=tmp_path / "local")
        try:
            error = client.probe_writable()
            assert error is not None and "not a cache server" in error
            assert client.load(KEY) is None  # falls back, never crashes
        finally:
            client.close()
            stop.set()
            thread.join(timeout=5)


# ------------------------------------------------------- restart recovery

class TestRestartRecovery:
    def test_client_survives_server_restart(self, tmp_path):
        directory = tmp_path / "served"
        first = _Server(directory, tmp_path)
        client = NetworkCacheClient(first.url,
                                    fallback_directory=tmp_path / "local",
                                    reconnect_cooldown=0.05)
        try:
            original = _sample_accuracy_result()
            client.store(KEY, original)
            port = first.port
            first.shutdown()
            # Mid-sweep outage: the RPC fails, degrades to a miss.
            assert client.load(KEY) is None
            assert client.rpc_errors >= 1
            # Same port, same directory — the crash-drill restart.
            second = _Server(directory, tmp_path, port=port)
            try:
                deadline = time.monotonic() + 10.0
                loaded = None
                while loaded is None and time.monotonic() < deadline:
                    time.sleep(0.05)  # let the reconnect cooldown lapse
                    loaded = client.load(KEY)
                assert loaded is not None
                assert loaded.to_dict() == original.to_dict()
                assert client.reconnects >= 1
            finally:
                second.shutdown()
        finally:
            client.close()


# ------------------------------------------------------- fault injection

class TestFaultInjection:
    @pytest.fixture
    def warm(self, server, tmp_path):
        client = NetworkCacheClient(server.url,
                                    fallback_directory=tmp_path / "local",
                                    rpc_timeout=0.5,
                                    reconnect_cooldown=0.05)
        client.store(KEY, _sample_accuracy_result())
        assert client.stores == 1
        yield client
        client.close()

    def test_stall_costs_a_bounded_miss(self, warm, monkeypatch):
        # A persistently wedged server: every attempt stalls past the
        # client RPC timeout, so the load degrades to a bounded miss.
        monkeypatch.setenv("REPRO_FAULT_INJECT", "stall=cache/serve@1.0")
        started = time.monotonic()
        assert warm.load(KEY) is None
        assert time.monotonic() - started < 10.0
        assert warm.rpc_errors == 2  # first attempt + the in-call retry
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert warm.load(KEY) is not None  # healthy server serves again

    def test_torn_reply_absorbed_by_reconnect_retry(self, warm,
                                                    monkeypatch, tmp_path):
        # A single torn frame costs one reconnect, not a miss: the
        # in-call retry replays the request on a fresh connection.
        latch = tmp_path / "torn.latch"
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"torn-once=cache/serve@{latch}")
        assert warm.load(KEY) is not None
        assert warm.rpc_errors == 1
        assert latch.exists()  # the fault fired exactly once

    def test_corrupt_reply_rejected_client_side(self, warm, monkeypatch,
                                                tmp_path):
        latch = tmp_path / "corrupt.latch"
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"corrupt-once=cache/serve@{latch}")
        assert warm.load(KEY) is None  # digest check → miss, not garbage
        assert warm.corrupt_replies == 1
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert warm.load(KEY) is not None  # entry itself was never harmed


# ------------------------------------------------ execute_cells integration

SPECS = [
    CellSpec(mode="accuracy", benchmark="lbm", num_uops=3_000,
             predictor="mascot"),
    CellSpec(mode="accuracy", benchmark="lbm", num_uops=3_000,
             predictor="phast"),
]


class TestExecuteCellsIntegration:
    def test_network_cache_warms_like_local(self, server, monkeypatch,
                                            tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local"))
        cold = execute_cells(SPECS, cache=server.url, journal=None)
        warm = execute_cells(SPECS, cache=server.url, journal=None)
        serial = execute_cells(SPECS, cache=None, journal=None)
        for a, b, c in zip(cold, warm, serial):
            assert a.to_dict() == b.to_dict() == c.to_dict()
        stats = probe_cache_server(server.host, server.port)
        assert stats["counters"]["server_stores"] == len(SPECS)
        # The warm sweep computed nothing: every load after the first
        # sweep hit the server.
        assert stats["counters"]["loads"] >= 2 * len(SPECS)

    def test_cell_key_addresses_server_entries(self, server, monkeypatch,
                                               tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local"))
        execute_cells(SPECS, cache=server.url, journal=None)
        local = ResultCache(server.directory)
        for spec in SPECS:
            assert local.load(cell_key(spec)) is not None

    def test_true_cache_spec_honours_env_url(self, server, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv(CACHE_URL_ENV, server.url)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local"))
        spec = CellSpec(mode="timing", benchmark="exchange2",
                        num_uops=3_000, predictor="nosq",
                        config=GOLDEN_COVE)
        (first,) = execute_cells([spec], cache=True, journal=None)
        (second,) = execute_cells([spec], cache=True, journal=None)
        assert first.to_dict() == second.to_dict()
        stats = probe_cache_server(server.host, server.port)
        assert stats["counters"]["server_stores"] == 1

    def test_settle_callback_reports_sources(self, server, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local"))
        execute_cells(SPECS, cache=server.url, journal=None)
        settled = []
        execute_cells(
            SPECS, cache=server.url, journal=None,
            settle=lambda position, spec, key, outcome, source:
                settled.append((position, source)))
        assert sorted(settled) == [(0, "cache"), (1, "cache")]


class TestProbeCacheServerErrors:
    def test_unreachable_raises_oserror(self):
        with pytest.raises(OSError):
            probe_cache_server("127.0.0.1", _free_port(), timeout=0.5)

    def test_wrong_peer_raises_frame_error(self, tmp_path):
        from repro.experiments.worker import serve as serve_worker

        stop = threading.Event()
        ready = tmp_path / "worker.ready"
        thread = threading.Thread(
            target=serve_worker,
            kwargs=dict(port=0, ready_file=str(ready), stop=stop,
                        quiet=True),
            daemon=True)
        thread.start()
        while not ready.exists():
            time.sleep(0.01)
        host, port = ready.read_text().strip().rsplit(":", 1)
        try:
            with pytest.raises(FrameError, match="not a cache server"):
                probe_cache_server(host, int(port))
        finally:
            stop.set()
            thread.join(timeout=5)
