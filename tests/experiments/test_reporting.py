"""Tests for the plain-text reporting helpers."""

from repro.experiments.reporting import (
    csv_lines,
    format_percent,
    render_series,
    render_table,
)


class TestFormatPercent:
    def test_gain(self):
        assert format_percent(1.019) == "+1.90%"

    def test_loss(self):
        assert format_percent(0.99) == "-1.00%"

    def test_flat(self):
        assert format_percent(1.0) == "+0.00%"

    def test_digits(self):
        assert format_percent(1.12345, digits=1) == "+12.3%"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["name", "value"],
                            [["a", 1.0], ["longer-name", 2.5]],
                            title="My table")
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "longer-name" in text

    def test_float_formatting(self):
        text = render_table(["x"], [[1.23456]], float_digits=2)
        assert "1.23" in text
        assert "1.2345" not in text

    def test_mixed_types(self):
        text = render_table(["a", "b"], [[42, "str"]])
        assert "42" in text and "str" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_contains_all_keys(self):
        text = render_series("ipc", {"gcc": 1.5, "mcf": 0.7})
        assert "ipc:" in text
        assert "gcc = 1.500" in text
        assert "mcf = 0.700" in text


class TestCsvLines:
    def test_header_and_rows(self):
        lines = csv_lines(["a", "b"], [[1, 2], [3, 4]])
        assert lines == ["a,b", "1,2", "3,4"]
