"""Baseline regression checking, including the sampled long-trace cell.

Measurement itself takes minutes of full-trace simulation, so these
tests drive :func:`check_against_baseline` with synthetic documents;
the real measurement runs in the CI perf job and via
``repro bench-baseline``.
"""

import pytest

from repro.experiments.bench_baseline import (
    BASELINE_SCHEMA,
    SAMPLED_MIN_SPEEDUP,
    check_against_baseline,
    load_baseline,
    write_baseline,
)


def engine_cell(speedup=6.0):
    return {
        "benchmark": "perlbench1", "predictor": "mascot",
        "core": "golden-cove", "speedup": speedup,
    }


def sampled_cell(speedup=25.0, covers=True):
    return {
        "benchmark": "xz", "predictor": "mascot", "core": "golden-cove",
        "num_uops": 8_000_000, "speedup": speedup,
        "full_ipc": 0.41, "ipc_ci": [0.40, 0.42],
        "ci_covers_full": covers,
    }


def document(cells=None, sampled=None):
    return {
        "schema": BASELINE_SCHEMA,
        "repeats": 3,
        "cells": [engine_cell()] if cells is None else cells,
        "sampled_cells": [sampled_cell()] if sampled is None else sampled,
    }


class TestSampledCellGate:
    def test_clean_comparison_passes(self):
        assert check_against_baseline(document(), document()) == []

    def test_ratio_regression_flagged(self):
        # Committed 60x, measured 24x: below the 50% sampled ratio floor
        # (30x) while still above the 20x absolute floor, so the ratio
        # gate is what fires.
        committed = document(sampled=[sampled_cell(speedup=60.0)])
        current = document(sampled=[sampled_cell(speedup=24.0)])
        violations = check_against_baseline(current, committed)
        assert any("end-to-end speedup" in v and "50%" in v
                   for v in violations)
        assert not any("acceptance floor" in v for v in violations)

    def test_sampled_ratio_tolerance_is_wider_than_engine(self):
        # A 30% dip on the sampled cell is host noise, not a regression.
        committed = document(sampled=[sampled_cell(speedup=38.0)])
        current = document(sampled=[sampled_cell(speedup=38.0 * 0.7)])
        assert check_against_baseline(current, committed) == []

    def test_absolute_floor_enforced(self):
        weak = sampled_cell(speedup=SAMPLED_MIN_SPEEDUP - 1.0)
        violations = check_against_baseline(
            document(sampled=[weak]), document(sampled=[weak]))
        assert any("sampled acceptance floor" in v for v in violations)

    def test_floor_can_be_disabled(self):
        weak = sampled_cell(speedup=SAMPLED_MIN_SPEEDUP - 1.0)
        assert check_against_baseline(
            document(sampled=[weak]), document(sampled=[weak]),
            min_sampled_speedup=None) == []

    def test_lost_ci_coverage_flagged(self):
        current = document(sampled=[sampled_cell(covers=False)])
        violations = check_against_baseline(current, document())
        assert any("no longer covers" in v for v in violations)

    def test_unknown_sampled_cell_flagged(self):
        stranger = dict(sampled_cell(), benchmark="mcf")
        violations = check_against_baseline(
            document(sampled=[stranger]), document())
        assert any("not in committed baseline" in v for v in violations)

    def test_skipped_sampled_section_checks_engine_cells_only(self):
        current = document(sampled=[])
        assert check_against_baseline(current, document()) == []


class TestSchema:
    def test_old_schema_rejected(self, tmp_path):
        stale = dict(document(), schema=BASELINE_SCHEMA - 1)
        path = write_baseline(stale, tmp_path / "stale.json")
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_roundtrip(self, tmp_path):
        path = write_baseline(document(), tmp_path / "base.json")
        assert load_baseline(path) == document()
