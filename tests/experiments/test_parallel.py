"""Determinism golden tests for the parallel suite execution engine.

The contract under test: ``jobs=N`` produces a grid **bit-identical** to
the serial path for any N, and a warm on-disk cache reproduces the same
grid without running a single simulation.
"""

import pytest

from repro.core.config import LION_COVE
from repro.experiments import parallel
from repro.experiments.parallel import CellSpec, execute_cells, resolve_cache
from repro.experiments.result_cache import ResultCache
from repro.experiments.suite import run_accuracy_suite, run_ipc_suite

#: ≥3 predictors × ≥3 benchmarks, as the determinism contract demands
#: (the perfect-mdp baseline joins automatically, making it 4 predictors).
PREDICTORS = ["mascot", "phast", "nosq"]
BENCHES = ["exchange2", "lbm", "perlbench1"]
N = 4_000


def _grids_identical(a, b):
    """Bit-identical comparison: exact float equality, full stats."""
    assert a.ipc == b.ipc  # exact ==, not approx: bit-identical IPC
    assert a.baseline == b.baseline
    for name, per_bench in a.stats.items():
        for bench, stats in per_bench.items():
            assert stats.to_dict() == b.stats[name][bench].to_dict()
    for name in a.ipc:
        assert a.normalised(name) == b.normalised(name)
        assert a.geomean(name) == b.geomean(name)


class TestIpcDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_ipc_suite(PREDICTORS, BENCHES, N, jobs=1)

    def test_parallel_matches_serial(self, serial):
        _grids_identical(run_ipc_suite(PREDICTORS, BENCHES, N, jobs=4),
                         serial)

    def test_cached_run_identical_without_recompute(self, serial, tmp_path,
                                                    monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        warm = run_ipc_suite(PREDICTORS, BENCHES, N, jobs=1, cache=cache)
        _grids_identical(warm, serial)
        assert cache.stores == len(BENCHES) * (len(PREDICTORS) + 1)

        # Spy on the compute function: a warm sweep must never call it.
        calls = []
        real = parallel.compute_cell
        monkeypatch.setattr(parallel, "compute_cell",
                            lambda spec: calls.append(spec) or real(spec))
        rerun = run_ipc_suite(PREDICTORS, BENCHES, N, jobs=1, cache=cache)
        assert calls == []
        _grids_identical(rerun, serial)

    def test_warm_cache_with_parallel_jobs(self, serial, tmp_path,
                                           monkeypatch):
        """Warm hits short-circuit before any pool is spawned."""
        cache_dir = tmp_path / "cache"
        run_ipc_suite(PREDICTORS, BENCHES, N, jobs=2, cache=cache_dir)
        monkeypatch.setattr(parallel, "compute_cell", _refuse_to_compute)
        rerun = run_ipc_suite(PREDICTORS, BENCHES, N, jobs=4,
                              cache=cache_dir)
        _grids_identical(rerun, serial)


def _refuse_to_compute(spec):
    raise AssertionError(f"cell recomputed despite warm cache: {spec}")


class TestAccuracyDeterminism:
    def test_parallel_matches_serial(self):
        serial = run_accuracy_suite(PREDICTORS, BENCHES, N, jobs=1)
        parallel_run = run_accuracy_suite(PREDICTORS, BENCHES, N, jobs=2)
        for name in PREDICTORS:
            for bench in BENCHES:
                assert (serial[name][bench].to_dict()
                        == parallel_run[name][bench].to_dict())

    def test_cached_accuracy_run(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        first = run_accuracy_suite(["mascot"], BENCHES, N, cache=cache_dir)
        monkeypatch.setattr(parallel, "compute_cell", _refuse_to_compute)
        second = run_accuracy_suite(["mascot"], BENCHES, N, cache=cache_dir)
        for bench in BENCHES:
            assert (first["mascot"][bench].to_dict()
                    == second["mascot"][bench].to_dict())


class TestExecuteCells:
    def test_results_keyed_by_position_not_completion(self):
        """A mixed-cost batch comes back in request order."""
        cells = [
            CellSpec(mode="accuracy", benchmark=bench, num_uops=N,
                     predictor=name)
            for bench in ("lbm", "exchange2") for name in ("phast", "mascot")
        ]
        results = execute_cells(cells, jobs=3)
        singles = [execute_cells([cell], jobs=1)[0] for cell in cells]
        for merged, single in zip(results, singles):
            assert merged.to_dict() == single.to_dict()

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            execute_cells([], jobs=0)

    def test_empty_batch(self):
        assert execute_cells([], jobs=4) == []

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CellSpec(mode="sideways", benchmark="lbm", num_uops=1,
                     predictor="mascot")
        with pytest.raises(ValueError):
            CellSpec(mode="timing", benchmark="lbm", num_uops=1,
                     predictor="mascot")  # no core config
        with pytest.raises(ValueError):
            CellSpec(mode="accuracy", benchmark="lbm", num_uops=1,
                     predictor="phast", track_f1=True)

    def test_specs_are_picklable(self):
        import pickle
        spec = CellSpec(mode="timing", benchmark="lbm", num_uops=100,
                        predictor="mascot", config=LION_COVE)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestResolveCache:
    def test_disabled_forms(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_path_form(self, tmp_path):
        cache = resolve_cache(tmp_path / "c")
        assert isinstance(cache, ResultCache)
        assert cache.directory == tmp_path / "c"

    def test_instance_passthrough(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache

    def test_true_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache(True).directory == tmp_path / "env"


class TestFigureParallelism:
    """Spot-check that figure generators produce identical output via jobs."""

    def test_fig7_identical(self):
        from repro.experiments.figures import fig7_ipc_full
        serial = fig7_ipc_full(["exchange2", "lbm"], N)
        sharded = fig7_ipc_full(["exchange2", "lbm"], N, jobs=2)
        assert serial.render() == sharded.render()
        assert serial.suite.ipc == sharded.suite.ipc

    def test_fig14_f1_profile_identical(self, tmp_path):
        from repro.experiments.figures import fig14_f1_ranking
        serial = fig14_f1_ranking(["perlbench1"], 8_000, period_loads=1_000)
        cached = fig14_f1_ranking(["perlbench1"], 8_000, period_loads=1_000,
                                  jobs=2, cache=tmp_path)
        warm = fig14_f1_ranking(["perlbench1"], 8_000, period_loads=1_000,
                                cache=tmp_path)
        assert serial.profile.ranked == cached.profile.ranked
        assert serial.profile.ranked == warm.profile.ranked
