"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_result_cache(tmp_path, monkeypatch):
    """Keep the CLI's default-on result cache out of the user's home."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


class TestSimulate:
    def test_runs(self, capsys):
        assert main(["simulate", "exchange2", "mascot",
                     "--uops", "4000"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out
        assert "exchange2 / mascot" in out

    def test_lion_cove(self, capsys):
        assert main(["simulate", "exchange2", "phast", "--uops", "4000",
                     "--core", "lion-cove"]) == 0
        assert "lion-cove" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "nonexistent", "mascot"])

    def test_unknown_predictor_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "lbm", "oracle-of-delphi"])


class TestCompare:
    def test_runs(self, capsys):
        assert main(["compare", "mascot", "phast",
                     "--benchmarks", "exchange2",
                     "--uops", "4000"]) == 0
        out = capsys.readouterr().out
        assert "geomean" in out
        assert "mascot" in out

    def test_parallel_matches_serial(self, capsys):
        """--jobs must not change a single digit of the output."""
        assert main(["compare", "mascot", "--benchmarks", "exchange2",
                     "--uops", "4000", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["compare", "mascot", "--benchmarks", "exchange2",
                     "--uops", "4000", "--no-cache", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_dir_used(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        assert main(["compare", "mascot", "--benchmarks", "exchange2",
                     "--uops", "4000", "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert list(cache_dir.glob("*.json"))  # populated
        assert main(["compare", "mascot", "--benchmarks", "exchange2",
                     "--uops", "4000", "--cache-dir", str(cache_dir)]) == 0
        assert capsys.readouterr().out == first  # warm hit, same digits


class TestAccuracy:
    def test_runs(self, capsys):
        assert main(["accuracy", "mascot",
                     "--benchmarks", "exchange2",
                     "--uops", "4000"]) == 0
        out = capsys.readouterr().out
        assert "false dependencies" in out


class TestFaultTolerance:
    def test_keep_going_marks_failures_and_exits_nonzero(self, monkeypatch,
                                                         capsys):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/phast")
        assert main(["compare", "mascot", "phast",
                     "--benchmarks", "exchange2", "lbm",
                     "--uops", "3000", "--no-cache", "--keep-going"]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "FAILED timing:lbm/phast" in captured.err

    def test_fail_fast_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/phast")
        with pytest.raises(RuntimeError, match="injected fault"):
            main(["compare", "phast", "--benchmarks", "lbm",
                  "--uops", "3000", "--no-cache"])

    def test_figure_keep_going_annotates_and_exits_nonzero(self,
                                                           monkeypatch,
                                                           capsys):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/phast")
        assert main(["figure", "fig8", "--benchmarks", "exchange2", "lbm",
                     "--uops", "3000", "--no-cache", "--keep-going",
                     "--no-journal"]) == 1
        captured = capsys.readouterr()
        assert "WARNING" in captured.out
        assert "FAILED accuracy:lbm/phast" in captured.err

    def test_fail_fast_and_keep_going_conflict(self):
        with pytest.raises(SystemExit):
            main(["compare", "mascot", "--fail-fast", "--keep-going"])

    def test_rejects_bad_retry_and_timeout_values(self):
        with pytest.raises(SystemExit):
            main(["compare", "mascot", "--retries", "-1"])
        with pytest.raises(SystemExit):
            main(["compare", "mascot", "--cell-timeout", "0"])

    def test_resume_after_keep_going_failure(self, monkeypatch, tmp_path,
                                             capsys):
        journal_dir = tmp_path / "journals"
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/phast")
        assert main(["accuracy", "phast", "--benchmarks", "exchange2",
                     "lbm", "--uops", "3000", "--no-cache", "--keep-going",
                     "--journal-dir", str(journal_dir)]) == 1
        captured = capsys.readouterr()
        run_id = captured.err.split("journal ")[1].split(":")[0]

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert main(["accuracy", "phast", "--benchmarks", "exchange2",
                     "lbm", "--uops", "3000", "--no-cache",
                     "--journal-dir", str(journal_dir),
                     "--resume", run_id]) == 0
        resumed_out = capsys.readouterr().out

        assert main(["accuracy", "phast", "--benchmarks", "exchange2",
                     "lbm", "--uops", "3000", "--no-cache",
                     "--no-journal"]) == 0
        assert capsys.readouterr().out == resumed_out

    def test_resume_with_no_journal_honours_journal_dir(self, monkeypatch,
                                                        tmp_path, capsys):
        """--resume must find the run under --journal-dir even when
        --no-journal disables journaling for the resumed run itself."""
        journal_dir = tmp_path / "journals"
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/phast")
        assert main(["accuracy", "phast", "--benchmarks", "exchange2",
                     "lbm", "--uops", "3000", "--no-cache", "--keep-going",
                     "--journal-dir", str(journal_dir)]) == 1
        run_id = capsys.readouterr().err.split("journal ")[1].split(":")[0]

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        # Point the default directory elsewhere to prove --journal-dir,
        # not the default, is what the resume loader consults.
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "elsewhere"))
        assert main(["accuracy", "phast", "--benchmarks", "exchange2",
                     "lbm", "--uops", "3000", "--no-cache", "--no-journal",
                     "--journal-dir", str(journal_dir),
                     "--resume", run_id]) == 0
        assert not (tmp_path / "elsewhere").exists()

    def test_no_journal_writes_nothing(self, monkeypatch, tmp_path,
                                       capsys):
        journal_dir = tmp_path / "journals"
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(journal_dir))
        assert main(["accuracy", "mascot", "--benchmarks", "exchange2",
                     "--uops", "3000", "--no-cache", "--no-journal"]) == 0
        assert not journal_dir.exists()


class TestDoctor:
    def test_healthy_environment_passes(self, tmp_path, capsys):
        assert main(["doctor", "--cache-dir", str(tmp_path / "c"),
                     "--journal-dir", str(tmp_path / "j")]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert "worker spawn ok" in out

    def test_unwritable_cache_fails_with_actionable_message(self, tmp_path,
                                                            capsys):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        assert main(["doctor", "--cache-dir", str(blocker / "sub"),
                     "--journal-dir", str(tmp_path / "j")]) == 1
        out = capsys.readouterr().out
        assert "FAIL [cache]" in out
        assert "--cache-dir" in out


class TestFigure:
    def test_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "512/204/192/114" in capsys.readouterr().out

    def test_fig2_reduced(self, capsys):
        assert main(["figure", "fig2", "--benchmarks", "lbm",
                     "--uops", "4000"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSizes:
    def test_prints_table2(self, capsys):
        assert main(["sizes"]) == 0
        out = capsys.readouterr().out
        assert "mascot" in out
        assert "14.00" in out


class TestGenTrace:
    def test_writes_file(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        assert main(["gen-trace", "exchange2", str(path),
                     "--uops", "2000"]) == 0
        from repro.trace.stream import read_trace
        assert len(read_trace(path)) == 2000


class TestValidate:
    def test_valid_trace_passes(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        main(["gen-trace", "exchange2", str(path), "--uops", "2000"])
        capsys.readouterr()
        assert main(["validate", str(path)]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_corrupted_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        main(["gen-trace", "exchange2", str(path), "--uops", "1000"])
        text = path.read_text().splitlines()
        # Corrupt one load's dependence annotation fields (distance).
        for i, line in enumerate(text[1:], start=1):
            parts = line.split()
            if parts[1] == "load" and parts[9] != "0":
                parts[9] = "99"
                text[i] = " ".join(parts)
                break
        path.write_text("\n".join(text) + "\n")
        capsys.readouterr()
        assert main(["validate", str(path)]) == 1
        assert "ERROR" in capsys.readouterr().out
