"""Tests for the async HTTP grid-submission coordinator (``repro serve``).

The contract under test: a grid POSTed to ``/submit`` streams back one
record per cell and ends with a ``done`` summary whose per-cell digests
are bit-identical to a local serial run of the same grid — for any number
of concurrent tenants, with or without a shared cache behind the server.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.config import GOLDEN_COVE
from repro.experiments.parallel import execute_cells
from repro.experiments.resilience import CellFailure, FailureKind
from repro.experiments.serve import (
    SubmissionError,
    SubmissionSpec,
    serve_http,
    submission_summary,
)

from .test_cache_service import _Server

GRID = {"mode": "accuracy", "predictors": ["mascot", "phast"],
        "benchmarks": ["lbm"], "num_uops": 3_000}


# ---------------------------------------------------------- spec validation

class TestSubmissionSpec:
    def test_defaults(self):
        sub = SubmissionSpec(dict(GRID))
        assert sub.mode == "accuracy"
        assert sub.warmup == 3_000 // 4
        assert sub.policy.fail_fast is False
        assert sub.policy.retries >= 0
        # benchmark-major cell order, exactly like run_accuracy_suite
        assert [(c.benchmark, c.predictor) for c in sub.cells] == [
            ("lbm", "mascot"), ("lbm", "phast")]
        assert all(c.warmup == sub.warmup for c in sub.cells)

    def test_benchmarks_default_to_full_suite(self):
        from repro.trace.profiles import suite_names

        sub = SubmissionSpec({"predictors": ["mascot"]})
        assert sub.benchmarks == list(suite_names())

    def test_timing_cells_carry_core_windows(self):
        sub = SubmissionSpec({"mode": "timing", "predictors": ["nosq"],
                              "benchmarks": ["lbm"], "num_uops": 2_000,
                              "engine": "batched"})
        (cell,) = sub.cells
        assert cell.mode == "timing"
        assert cell.store_window == GOLDEN_COVE.sb_size
        assert cell.instr_window == GOLDEN_COVE.rob_size
        assert cell.engine == "batched"
        assert cell.warmup == 0  # warmup is an accuracy-mode knob

    def test_keep_going_false_means_fail_fast(self):
        sub = SubmissionSpec(dict(GRID, keep_going=False))
        assert sub.policy.fail_fast is True

    @pytest.mark.parametrize("body,match", [
        ([], "JSON object"),
        (dict(GRID, mode="nope"), "unknown mode"),
        ({"mode": "accuracy"}, "predictors"),
        (dict(GRID, predictors=[]), "predictors"),
        (dict(GRID, predictors=["not-a-predictor"]), "unknown predictors"),
        (dict(GRID, benchmarks=["not-a-benchmark"]), "unknown benchmarks"),
        (dict(GRID, benchmarks=[]), "benchmarks"),
        (dict(GRID, num_uops=0), "num_uops"),
        (dict(GRID, num_uops="many"), "num_uops"),
        (dict(GRID, warmup=-1), "warmup"),
        (dict(GRID, engine="quantum"), "unknown engine"),
        (dict(GRID, retries=-1), "retries"),
        (dict(GRID, cell_timeout=0), "cell_timeout"),
        (dict(GRID, keep_going="yes"), "keep_going"),
        (dict(GRID, surprise=1), "unknown submission fields"),
    ], ids=lambda value: str(value)[:40])
    def test_rejections(self, body, match):
        with pytest.raises(SubmissionError, match=match):
            SubmissionSpec(body)


# ------------------------------------------------------- summary semantics

class TestSubmissionSummary:
    def test_digests_and_totals(self):
        sub = SubmissionSpec(dict(GRID))
        results = execute_cells(sub.cells, cache=None, journal=None)
        summary = submission_summary(sub.mode, sub.cells, results)
        assert sorted(summary["digests"]) == ["lbm/mascot", "lbm/phast"]
        assert summary["failures"] == {}
        for name in ("mascot", "phast"):
            assert set(summary["totals"][name]) == {
                "mispredictions", "false_dependencies", "speculative_errors"}
        # Digest maps are the bit-identity comparator: a re-run agrees.
        again = execute_cells(sub.cells, cache=None, journal=None)
        assert (submission_summary(sub.mode, sub.cells, again)["digests"]
                == summary["digests"])

    def test_failures_are_recorded_not_digested(self):
        sub = SubmissionSpec(dict(GRID))
        results = execute_cells(sub.cells, cache=None, journal=None)
        results[1] = CellFailure(spec=sub.cells[1], kind=FailureKind.ERROR,
                                 attempts=1, message="boom")
        summary = submission_summary(sub.mode, sub.cells, results)
        assert list(summary["digests"]) == ["lbm/mascot"]
        assert summary["failures"] == {"lbm/phast": "error"}


# -------------------------------------------------------- HTTP integration

class _HttpServer:
    """One in-thread ``serve_http`` with a deterministic lifecycle."""

    def __init__(self, tmp_path, **kwargs):
        self.stop = threading.Event()
        ready = tmp_path / f"serve-{id(self)}.ready"
        kwargs.setdefault("cache", None)
        self.thread = threading.Thread(
            target=serve_http,
            kwargs=dict(port=0, ready_file=str(ready), quiet=True,
                        stop=self.stop, **kwargs),
            daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while not ready.exists():
            assert time.monotonic() < deadline, "serve_http never ready"
            time.sleep(0.01)
        host, port = ready.read_text().strip().rsplit(":", 1)
        self.host, self.port = host, int(port)

    def shutdown(self):
        self.stop.set()
        self.thread.join(timeout=10)
        assert not self.thread.is_alive()

    def get(self, path):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def submit(self, body):
        """POST a grid; returns ``(status, records_or_error_bytes)``."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        try:
            conn.request("POST", "/submit", body=json.dumps(body).encode(),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            if response.status != 200:
                return response.status, response.read()
            records = [json.loads(line) for line in response if line.strip()]
            return response.status, records
        finally:
            conn.close()


@pytest.fixture
def http_server(tmp_path):
    server = _HttpServer(tmp_path)
    yield server
    server.shutdown()


def _done(records):
    assert records[-1]["event"] == "done", records[-1]
    return records[-1]


class TestServeHttp:
    def test_healthz(self, http_server):
        status, body = http_server.get("/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["ok"] is True
        assert health["backend"] == "local"

    def test_unknown_path_404(self, http_server):
        status, _body = http_server.get("/nope")
        assert status == 404

    def test_bad_submission_400(self, http_server):
        status, body = http_server.submit(dict(GRID, mode="nope"))
        assert status == 400
        assert "unknown mode" in json.loads(body)["error"]

    def test_submit_streams_cells_then_done(self, http_server):
        status, records = http_server.submit(GRID)
        assert status == 200
        assert records[0]["event"] == "start"
        assert records[0]["cells"] == 2
        cells = [r for r in records if r["event"] == "cell"]
        assert sorted(c["position"] for c in cells) == [0, 1]
        assert all(c["status"] == "ok" and c["digest"] for c in cells)
        done = _done(records)
        assert (done["ok"], done["failed"]) == (2, 0)

    def test_stream_matches_serial_run_bit_for_bit(self, http_server):
        status, records = http_server.submit(GRID)
        assert status == 200
        sub = SubmissionSpec(dict(GRID))
        serial = execute_cells(sub.cells, cache=None, journal=None)
        reference = submission_summary(sub.mode, sub.cells, serial)
        assert _done(records)["summary"]["digests"] == reference["digests"]
        # The per-cell streamed digests agree with the summary map too.
        streamed = {f"{r['benchmark']}/{r['predictor']}": r["digest"]
                    for r in records if r["event"] == "cell"}
        assert streamed == reference["digests"]

    def test_two_concurrent_tenants_agree(self, http_server):
        outcomes = {}

        def tenant(name):
            outcomes[name] = http_server.submit(GRID)

        threads = [threading.Thread(target=tenant, args=(name,))
                   for name in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        (status_a, records_a), (status_b, records_b) = (
            outcomes["a"], outcomes["b"])
        assert status_a == status_b == 200
        digests_a = _done(records_a)["summary"]["digests"]
        digests_b = _done(records_b)["summary"]["digests"]
        assert digests_a == digests_b
        assert len(digests_a) == 2

    def test_submissions_share_a_cache_server(self, tmp_path):
        cache = _Server(tmp_path / "served", tmp_path)
        http_server = _HttpServer(tmp_path, cache=cache.url)
        try:
            status, cold = http_server.submit(GRID)
            assert status == 200
            status, warm = http_server.submit(GRID)
            assert status == 200
            assert (_done(cold)["summary"]["digests"]
                    == _done(warm)["summary"]["digests"])
            # The second tenant computed nothing: every cell resolved
            # from the shared cache server.
            sources = [r["source"] for r in warm if r["event"] == "cell"]
            assert sources == ["cache", "cache"]
        finally:
            http_server.shutdown()
            cache.shutdown()

    def test_sweep_record_streams_cache_counters(self, tmp_path):
        cache = _Server(tmp_path / "served", tmp_path)
        http_server = _HttpServer(tmp_path, cache=cache.url)
        try:
            status, records = http_server.submit(GRID)
            assert status == 200
            (sweep,) = [r for r in records if r.get("event") == "sweep"]
            assert sweep["cache"]["stores"] == 2
        finally:
            http_server.shutdown()
            cache.shutdown()
