"""Property tests for the content-addressed result cache.

Two invariants matter: any single-field change to a cell's parameters
yields a different key, and no on-disk damage ever surfaces as anything
worse than a cache miss.
"""

import dataclasses
import json

import pytest

from repro.analysis.accuracy import AccuracyStats, Outcome, OutcomeKind
from repro.predictors.base import PredictionKind
from repro.core.config import GOLDEN_COVE, LION_COVE
from repro.core.stats import PipelineStats
from repro.experiments.parallel import CellSpec, execute_cells
from repro.experiments.result_cache import (
    CACHE_DIR_ENV,
    CacheLock,
    ResultCache,
    cell_key,
    default_cache_dir,
    predictor_fingerprint,
    shared_code_salt,
)
from repro.experiments.runner import PredictionRunResult


BASE = CellSpec(mode="accuracy", benchmark="lbm", num_uops=5_000,
                predictor="mascot")


def _variant(**changes):
    return dataclasses.replace(BASE, **changes)


class TestCellKey:
    def test_stable_across_calls(self):
        assert cell_key(BASE) == cell_key(BASE)
        assert cell_key(BASE) == cell_key(_variant())

    @pytest.mark.parametrize("changes", [
        {"benchmark": "mcf"},
        {"num_uops": 5_001},
        {"program_seed": 7},
        {"trace_seed": 2},
        {"store_window": 115},
        {"instr_window": 256},
        {"warmup": 100},
        {"f1_period": 500},
        {"predictor": "phast"},
        {"predictor": "nosq"},
    ], ids=lambda c: next(iter(c)))
    def test_single_field_change_changes_key(self, changes):
        assert cell_key(_variant(**changes)) != cell_key(BASE)

    def test_mode_changes_key(self):
        timing = _variant(mode="timing", config=GOLDEN_COVE)
        assert cell_key(timing) != cell_key(BASE)

    def test_core_config_changes_key(self):
        golden = _variant(mode="timing", config=GOLDEN_COVE)
        lion = _variant(mode="timing", config=LION_COVE)
        assert cell_key(golden) != cell_key(lion)

    def test_single_core_parameter_changes_key(self):
        base = _variant(mode="timing", config=GOLDEN_COVE)
        tweaked = _variant(mode="timing",
                           config=dataclasses.replace(GOLDEN_COVE,
                                                      sb_size=115))
        assert cell_key(base) != cell_key(tweaked)

    def test_predictor_config_is_keyed(self):
        """mascot and mascot-opt share a class but not a key: the
        fingerprint captures the config dataclass, not just the module."""
        fp_default = predictor_fingerprint("mascot")
        fp_opt = predictor_fingerprint("mascot-opt")
        assert fp_default["class"] == fp_opt["class"]
        assert fp_default["config"] != fp_opt["config"]
        assert (cell_key(BASE)
                != cell_key(_variant(predictor="mascot-opt")))

    def test_keys_are_filename_safe_hex(self):
        key = cell_key(BASE)
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_shared_code_salt_is_stable(self):
        assert shared_code_salt() == shared_code_salt()


def _sample_accuracy_result():
    stats = AccuracyStats()
    stats.instructions = 5_000
    stats.record(Outcome(OutcomeKind.CORRECT_MDP, PredictionKind.MDP, True))
    stats.record(Outcome(OutcomeKind.MISSED_DEP, PredictionKind.NO_DEP, False))
    stats.record(Outcome(OutcomeKind.CORRECT_NODEP, PredictionKind.NO_DEP,
                         True))
    return PredictionRunResult(accuracy=stats,
                               predictions_per_table=[3, 1, 0])


class TestRoundTrip:
    def test_accuracy_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        original = _sample_accuracy_result()
        cache.store("k" * 64, original)
        loaded = cache.load("k" * 64)
        assert isinstance(loaded, PredictionRunResult)
        assert loaded.to_dict() == original.to_dict()
        assert loaded.accuracy.mispredictions == 1

    def test_timing_result_via_engine(self, tmp_path):
        """A real timing cell round-trips with every counter intact."""
        cache = ResultCache(tmp_path)
        spec = CellSpec(mode="timing", benchmark="exchange2", num_uops=4_000,
                        predictor="mascot", config=GOLDEN_COVE)
        (direct,) = execute_cells([spec], cache=cache)
        (cached,) = execute_cells([spec], cache=cache)
        assert isinstance(direct, PipelineStats)
        assert cached.to_dict() == direct.to_dict()
        assert cached.ipc == direct.ipc
        assert cache.hits == 1

    def test_f1_profile_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = CellSpec(mode="accuracy", benchmark="perlbench1",
                        num_uops=6_000, predictor="mascot",
                        f1_period=1_000, track_f1=True)
        (direct,) = execute_cells([spec], cache=cache)
        (cached,) = execute_cells([spec], cache=cache)
        assert direct.f1_profile is not None
        assert cached.f1_profile.ranked == direct.f1_profile.ranked
        assert cached.f1_profile.periods == direct.f1_profile.periods

    def test_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("a" * 64) is None
        cache.store("a" * 64, _sample_accuracy_result())
        cache.load("a" * 64)
        assert (cache.misses, cache.stores, cache.hits) == (1, 1, 1)


class TestCorruptionIsAMiss:
    KEY = "b" * 64

    @pytest.fixture
    def warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(self.KEY, _sample_accuracy_result())
        return cache

    def test_truncated_file(self, warm):
        path = warm.path_for(self.KEY)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert warm.load(self.KEY) is None

    def test_not_json(self, warm):
        warm.path_for(self.KEY).write_text("not json at all {{{")
        assert warm.load(self.KEY) is None

    def test_empty_file(self, warm):
        warm.path_for(self.KEY).write_text("")
        assert warm.load(self.KEY) is None

    def test_wrong_key_in_body(self, warm):
        """A file renamed/copied to the wrong key must not be served."""
        payload = json.loads(warm.path_for(self.KEY).read_text())
        other = ResultCache(warm.directory)
        other.path_for("c" * 64).write_text(json.dumps(payload))
        assert other.load("c" * 64) is None

    def test_schema_version_mismatch(self, warm):
        path = warm.path_for(self.KEY)
        payload = json.loads(path.read_text())
        payload["v"] = 999
        path.write_text(json.dumps(payload))
        assert warm.load(self.KEY) is None

    def test_unknown_result_kind(self, warm):
        path = warm.path_for(self.KEY)
        payload = json.loads(path.read_text())
        payload["result"]["kind"] = "mystery"
        path.write_text(json.dumps(payload))
        assert warm.load(self.KEY) is None

    def test_mangled_result_body(self, warm):
        path = warm.path_for(self.KEY)
        payload = json.loads(path.read_text())
        payload["result"]["data"] = {"wrong": "shape"}
        path.write_text(json.dumps(payload))
        assert warm.load(self.KEY) is None

    def test_corrupt_entry_recomputed_and_repaired(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = CellSpec(mode="accuracy", benchmark="lbm", num_uops=4_000,
                        predictor="phast")
        (first,) = execute_cells([spec], cache=cache)
        cache.path_for(cell_key(spec)).write_text("garbage")
        (second,) = execute_cells([spec], cache=cache)
        assert second.to_dict() == first.to_dict()
        (third,) = execute_cells([spec], cache=cache)  # repaired on store
        assert third.to_dict() == first.to_dict()
        assert cache.hits == 1

    def test_store_into_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "a" / "b" / "c")
        cache.store("d" * 64, _sample_accuracy_result())
        assert cache.load("d" * 64) is not None


class TestQuarantine:
    KEY = "e" * 64

    @pytest.fixture
    def warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(self.KEY, _sample_accuracy_result())
        return cache

    def test_corrupt_entry_is_moved_to_corrupt_dir(self, warm):
        path = warm.path_for(self.KEY)
        path.write_text("garbage {{{")
        assert warm.load(self.KEY) is None
        assert not path.exists()
        quarantined = warm.quarantine_dir / path.name
        assert quarantined.read_text() == "garbage {{{"
        assert warm.quarantined == 1

    def test_digest_mismatch_is_quarantined(self, warm):
        path = warm.path_for(self.KEY)
        payload = json.loads(path.read_text())
        payload["digest"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert warm.load(self.KEY) is None
        assert warm.quarantined == 1
        assert not path.exists()

    def test_stale_schema_is_a_miss_not_quarantined(self, warm):
        """An old-schema entry is merely stale: overwritten on the next
        store, never treated as damage."""
        path = warm.path_for(self.KEY)
        payload = json.loads(path.read_text())
        payload["v"] = 1
        path.write_text(json.dumps(payload))
        assert warm.load(self.KEY) is None
        assert warm.quarantined == 0
        assert path.exists()

    def test_repeated_corruption_gets_numbered_names(self, warm):
        path = warm.path_for(self.KEY)
        for round_number in (1, 2):
            path.write_text(f"garbage {round_number}")
            assert warm.load(self.KEY) is None
        assert warm.quarantined == 2
        assert (warm.quarantine_dir / path.name).exists()
        assert (warm.quarantine_dir / f"{path.name}.1").exists()

    def test_quarantined_entry_not_served_after_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = CellSpec(mode="accuracy", benchmark="lbm", num_uops=4_000,
                        predictor="phast")
        (first,) = execute_cells([spec], cache=cache)
        cache.path_for(cell_key(spec)).write_text("garbage")
        (second,) = execute_cells([spec], cache=cache)
        assert second.to_dict() == first.to_dict()
        # The repaired entry now hits; the quarantined file is ignored.
        (third,) = execute_cells([spec], cache=cache)
        assert third.to_dict() == first.to_dict()
        assert cache.hits == 1
        assert cache.quarantined == 1


class TestProbeWritable:
    def test_creates_and_probes(self, tmp_path):
        cache = ResultCache(tmp_path / "fresh")
        assert cache.probe_writable() is None
        assert cache.directory.is_dir()
        assert list(cache.directory.iterdir()) == []  # probe cleaned up

    def test_reports_failure_reason(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        error = ResultCache(blocker / "sub").probe_writable()
        assert error is not None


class TestDefaultDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        path = default_cache_dir()
        assert path.name == "repro-mascot"
        assert path.parent.name == ".cache"


class TestSourceDigest:
    def test_nonexistent_entry_is_a_hard_error(self):
        from repro.experiments.result_cache import _source_digest

        with pytest.raises(ValueError, match="no_such_subpackage"):
            _source_digest(("no_such_subpackage",))

    def test_empty_directory_entry_is_a_hard_error(self, tmp_path, monkeypatch):
        import repro.experiments.result_cache as rc

        (tmp_path / "hollow").mkdir()
        monkeypatch.setattr(rc, "_PACKAGE_ROOT", tmp_path)
        with pytest.raises(ValueError, match="matches no Python files"):
            rc._source_digest(("hollow",))

    def test_shared_salt_entries_all_resolve(self):
        # The committed tuples must never trip the hard error.
        assert shared_code_salt()
        assert predictor_fingerprint("mascot")["code"]


class TestCacheLock:
    """Lock-file discipline for shared (multi-coordinator) caches."""

    def test_exclusive_while_held(self, tmp_path):
        lock = CacheLock(tmp_path / "entry.lock")
        assert lock.acquire()
        rival = CacheLock(tmp_path / "entry.lock", timeout=0.2)
        assert not rival.acquire()
        lock.release()
        assert rival.acquire()
        rival.release()

    def test_lock_file_holds_token_and_is_removed_on_release(self, tmp_path):
        import os

        path = tmp_path / "entry.lock"
        with CacheLock(path) as lock:
            assert lock.acquired
            assert path.read_text() == lock.token
            pid, _, nonce = path.read_text().partition(":")
            assert pid == str(os.getpid())
            assert nonce.isdigit()
        assert not path.exists()

    def test_tokens_unique_per_acquire(self, tmp_path):
        lock = CacheLock(tmp_path / "entry.lock")
        assert lock.acquire()
        first = lock.token
        lock.release()
        assert lock.acquire()
        assert lock.token != first
        lock.release()

    def test_stale_lock_is_broken(self, tmp_path):
        import os

        path = tmp_path / "entry.lock"
        path.write_text("99999")
        old = path.stat().st_mtime - 120.0
        os.utime(path, (old, old))  # holder died two minutes ago
        lock = CacheLock(path, timeout=1.0, stale_after=30.0)
        assert lock.acquire()
        lock.release()

    def test_timeout_proceeds_unlocked(self, tmp_path):
        path = tmp_path / "entry.lock"
        path.write_text("1")  # fresh: never stale-broken within the test
        lock = CacheLock(path, timeout=0.2, stale_after=300.0)
        assert not lock.acquire()
        assert not lock.acquired
        lock.release()  # no-op, must not unlink the rival's lock
        assert path.exists()

    def test_unwritable_directory_proceeds_unlocked(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        lock = CacheLock(blocker / "entry.lock", timeout=0.2)
        assert not lock.acquire()

    def test_store_under_held_lock_counts_timeout_but_lands(self, tmp_path,
                                                            monkeypatch):
        result = _sample_accuracy_result()
        cache = ResultCache(tmp_path)
        key = cell_key(BASE)
        monkeypatch.setattr(
            ResultCache, "_lock_for",
            lambda self, path: CacheLock(path.with_name(path.name + ".lock"),
                                         timeout=0.2, stale_after=300.0))
        rival = cache._lock_for(cache.path_for(key))
        assert rival.acquire()
        try:
            cache.store(key, result)
        finally:
            rival.release()
        # Best-effort: the write proceeded unlocked and was counted.
        assert cache.lock_timeouts == 1
        assert cache.load(key) is not None

    def test_release_after_steal_leaves_new_owner_lock(self, tmp_path):
        """Regression: release used to unlink unconditionally.  When a
        stale-breaker removes A's lock and B re-acquires, A's release
        must leave B's lock file alone."""
        path = tmp_path / "entry.lock"
        ours = CacheLock(path)
        assert ours.acquire()
        path.unlink()  # a stale-breaker judged us dead...
        rival = CacheLock(path)
        assert rival.acquire()  # ...and a rival took the lock over
        ours.release()
        assert path.exists()
        assert path.read_text() == rival.token
        rival.release()
        assert not path.exists()

    def test_stale_break_skips_reacquired_lock(self, tmp_path):
        """Regression: the stale-break unlink is conditional on the lock
        still holding the token whose age was judged stale.  If the
        holder releases and a third party re-acquires between the stat
        and the unlink, the fresh lock survives."""
        import os

        path = tmp_path / "entry.lock"
        path.write_text("99999:0")
        old = path.stat().st_mtime - 120.0
        os.utime(path, (old, old))
        breaker = CacheLock(path, timeout=0.2, stale_after=30.0)
        observed = breaker._read_state()
        assert observed == ("99999:0", observed[1]) and observed[1] > 30.0
        # The race window: holder releases, someone else re-acquires.
        path.unlink()
        fresh = CacheLock(path)
        assert fresh.acquire()
        assert not breaker._unlink_if_token(observed[0])
        assert path.read_text() == fresh.token
        fresh.release()

    def test_probe_lock_clean_directory(self, tmp_path):
        assert ResultCache(tmp_path / "cache").probe_lock() is None

    def test_probe_lock_detects_non_exclusive_create(self, tmp_path,
                                                     monkeypatch):
        # Simulate a filesystem that silently ignores O_EXCL: the second
        # acquire "succeeds" while the probe still holds the lock.
        cache = ResultCache(tmp_path / "cache")
        monkeypatch.setattr(CacheLock, "acquire", lambda self: True)
        error = cache.probe_lock()
        assert error is not None and "O_EXCL" in error


class TestTempFileHygiene:
    """A failed store must not strand ``<key>.json.tmp<pid>`` forever."""

    def test_failed_store_leaves_no_tmp(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)

        def refuse(src, dst):
            raise OSError("injected: disk full")

        monkeypatch.setattr("os.replace", refuse)
        with pytest.raises(OSError, match="disk full"):
            cache.store("f" * 64, _sample_accuracy_result())
        assert cache.orphan_tmp_files() == []
        assert not cache.contains("f" * 64)
        assert cache.stores == 0

    def test_orphan_listing_and_age_gated_sweep(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        cache.directory.mkdir(parents=True, exist_ok=True)
        fresh = cache.directory / f"{'a' * 64}.json.tmp111"
        stale = cache.directory / f"{'b' * 64}.json.tmp222"
        fresh.write_text("{}")
        stale.write_text("{}")
        old = stale.stat().st_mtime - 3_600.0
        os.utime(stale, (old, old))  # its writer died an hour ago
        assert cache.orphan_tmp_files() == sorted([fresh, stale])
        assert cache.sweep_orphan_tmp(min_age=60.0) == 1
        assert fresh.exists() and not stale.exists()
        assert cache.orphan_tmp_files() == [fresh]

    def test_entries_never_listed_as_orphans(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("a" * 64, _sample_accuracy_result())
        assert cache.orphan_tmp_files() == []


class TestConcurrentWriters:
    """Two coordinators racing on one key: serialised, counted, intact."""

    @pytest.fixture
    def short_lock(self, monkeypatch):
        monkeypatch.setattr(
            ResultCache, "_lock_for",
            lambda self, path: CacheLock(path.with_name(path.name + ".lock"),
                                         timeout=0.2, stale_after=300.0))

    def test_two_writers_same_key_both_land(self, tmp_path):
        import threading

        key = "a" * 64
        result = _sample_accuracy_result()
        writers = [ResultCache(tmp_path), ResultCache(tmp_path)]
        gate = threading.Barrier(2)

        def hammer(cache):
            gate.wait()
            for _ in range(5):
                cache.store(key, result)

        threads = [threading.Thread(target=hammer, args=(cache,))
                   for cache in writers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(cache.stores == 5 for cache in writers)
        loaded = writers[0].load(key)
        assert loaded.to_dict() == result.to_dict()
        # No residue: temp files consumed, every lock released.
        assert writers[0].orphan_tmp_files() == []
        assert not (tmp_path / f"{key}.json.lock").exists()

    def test_quarantine_under_held_lock_counts_timeout(self, tmp_path,
                                                       short_lock):
        cache = ResultCache(tmp_path)
        key = "c" * 64
        cache.store(key, _sample_accuracy_result())
        cache.path_for(key).write_text("garbage")
        rival = cache._lock_for(cache.path_for(key))
        assert rival.acquire()
        try:
            assert cache.load(key) is None  # proceeds unlocked
        finally:
            rival.release()
        assert cache.lock_timeouts == 1
        assert cache.quarantined == 1
        assert (cache.quarantine_dir / f"{key}.json").exists()

    def test_lock_timeouts_accumulate_across_store_and_quarantine(
            self, tmp_path, short_lock):
        cache = ResultCache(tmp_path)
        key = "d" * 64
        rival = cache._lock_for(cache.path_for(key))
        assert rival.acquire()
        try:
            cache.store(key, _sample_accuracy_result())  # timeout 1
            cache.path_for(key).write_text("garbage")
            assert cache.load(key) is None  # quarantine: timeout 2
        finally:
            rival.release()
        assert cache.lock_timeouts == 2
        assert cache.counters["lock_timeouts"] == 2
