"""Tests for core-parameter sweeps."""

import pytest

from repro.core.config import GOLDEN_COVE
from repro.experiments.sweeps import sweep_core_parameter


class TestSweep:
    def test_empty_variations_rejected(self):
        with pytest.raises(ValueError):
            sweep_core_parameter([], ["mascot"])

    def test_points_and_series(self):
        result = sweep_core_parameter(
            [{"rob_size": 128}, {"rob_size": 512}],
            ["mascot"],
            benchmarks=["exchange2"],
            num_uops=5_000,
        )
        assert len(result.points) == 2
        series = result.series("mascot")
        assert set(series) == {"rob_size=128", "rob_size=512"}
        for value in series.values():
            assert 0.5 < value < 1.5

    def test_each_point_has_own_baseline(self):
        result = sweep_core_parameter(
            [{"rob_size": 128}, {"rob_size": 512}],
            ["mascot"],
            benchmarks=["exchange2"],
            num_uops=5_000,
        )
        for point in result.points:
            assert point.suite.geomean("perfect-mdp") == pytest.approx(1.0)

    def test_configs_applied(self):
        result = sweep_core_parameter(
            [{"rob_size": 128}],
            ["mascot"],
            benchmarks=["exchange2"],
            num_uops=4_000,
        )
        assert result.points[0].config.rob_size == 128
        assert GOLDEN_COVE.rob_size == 512  # base untouched

    def test_monotone_helper(self):
        result = sweep_core_parameter(
            [{"rob_size": 256}, {"rob_size": 512}],
            ["perfect-mdp-smb"],
            benchmarks=["perlbench1"],
            num_uops=12_000,
        )
        # The helper returns a bool; the window-scaling *claim* is asserted
        # at full scale in benchmarks/bench_window_scaling.py.
        assert isinstance(result.monotone_increasing("perfect-mdp-smb"),
                          bool)
