"""Tests for the distributed executor backends and worker protocol.

Unit layers (framing, wire specs, endpoints, leases) run over
``socket.socketpair`` with no processes.  Integration layers launch real
``repro worker`` subprocesses on ephemeral ports and drive
:func:`execute_cells` over TCP; protocol faults (``stall``, ``torn``,
``corrupt``) and worker crashes are injected through the worker's
*subprocess* environment, so every fault genuinely crosses the network
boundary.  The golden tests at the end are the issue's acceptance
scenarios: kill a worker mid-grid, and separately SIGKILL the
coordinator mid-grid and ``--resume`` — both must produce results
bit-identical to an uninterrupted serial run.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.experiments.backends import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    LocalPoolBackend,
    ProtocolVersionError,
    WorkerBackend,
    lease_id,
    parse_endpoints,
    probe_endpoint,
    recv_frame,
    send_frame,
    spec_from_wire,
    spec_to_wire,
)
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import CellSpec, execute_cells
from repro.experiments.resilience import (
    CellFailure,
    FailureKind,
    ResiliencePolicy,
)
from repro.experiments.result_cache import encode_result
from repro.experiments.worker import serve
from repro.core.config import GOLDEN_COVE

SRC = Path(repro.__file__).resolve().parents[1]

N = 3_000


def _cell(benchmark, predictor="mascot", num_uops=N):
    return CellSpec(mode="accuracy", benchmark=benchmark, num_uops=num_uops,
                    predictor=predictor)


GRID = [_cell("exchange2"), _cell("lbm"), _cell("lbm", "phast"),
        _cell("perlbench1")]


def _encoded(results):
    return [encode_result(r) for r in results]


def _policy(**kwargs):
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("jitter", 0.0)
    return ResiliencePolicy(**kwargs)


# --------------------------------------------------------------- fixtures

@pytest.fixture(scope="module")
def serial_grid():
    """Uninterrupted serial reference for GRID (bit-identity oracle)."""
    return execute_cells(GRID)


@pytest.fixture
def workers(tmp_path):
    """Factory launching ``repro worker`` subprocesses on ephemeral ports.

    Returns ``launch(n, env_extra) -> (endpoints_csv, procs)``.  Fault
    specs go in ``env_extra`` so they apply only inside the workers —
    the coordinator (this process) stays clean, proving the fault
    crossed the wire.
    """
    procs = []

    def launch(n=2, env_extra=None, args_extra=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        if env_extra:
            env.update(env_extra)
        batch = []
        ready_files = []
        for i in range(n):
            ready = tmp_path / f"worker-{len(procs)}-{i}.ready"
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--ready-file", str(ready), *(args_extra or [])],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            procs.append(proc)
            batch.append(proc)
            ready_files.append(ready)
        addrs = []
        for ready, proc in zip(ready_files, batch):
            deadline = time.monotonic() + 30.0
            while not ready.exists():
                if proc.poll() is not None:
                    raise RuntimeError(
                        f"worker exited rc={proc.returncode} before ready")
                if time.monotonic() > deadline:
                    raise RuntimeError("worker never wrote its ready file")
                time.sleep(0.02)
            addrs.append(ready.read_text().strip())
        return ",".join(addrs), batch

    yield launch
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        proc.wait(timeout=10)


@pytest.fixture
def inproc_worker(tmp_path):
    """One worker served from a daemon thread (for probe-level tests)."""
    stop = threading.Event()
    ready = tmp_path / "inproc.ready"
    thread = threading.Thread(
        target=serve,
        kwargs=dict(port=0, ready_file=str(ready), stop=stop, quiet=True),
        daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not ready.exists():
        assert time.monotonic() < deadline, "in-process worker never ready"
        time.sleep(0.01)
    host, port = ready.read_text().strip().rsplit(":", 1)
    yield host, int(port)
    stop.set()
    thread.join(timeout=5)


# ---------------------------------------------------------------- framing

class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"type": "hello", "n": 7})
            assert recv_frame(b) == {"type": "hello", "n": 7}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 1 << 16) + b'{"type":')
            a.close()
            with pytest.raises(FrameError, match="torn"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_header_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_raises(self):
        a, b = socket.socketpair()
        try:
            body = b"[1, 2, 3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_payload_raises(self):
        a, b = socket.socketpair()
        try:
            body = b"\xff\xfe not json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestWireSpecs:
    @pytest.mark.parametrize("spec", GRID)
    def test_accuracy_round_trip(self, spec):
        wire = json.loads(json.dumps(spec_to_wire(spec)))
        assert spec_from_wire(wire) == spec

    def test_timing_spec_with_core_config_round_trips(self):
        spec = CellSpec(mode="timing", benchmark="lbm", num_uops=N,
                        predictor="mascot", config=GOLDEN_COVE)
        wire = json.loads(json.dumps(spec_to_wire(spec)))
        restored = spec_from_wire(wire)
        assert restored == spec
        assert restored.config == GOLDEN_COVE


class TestEndpoints:
    def test_parse(self):
        assert parse_endpoints("a:1, b:2") == (("a", 1), ("b", 2))

    @pytest.mark.parametrize("bad", ["", ",", "noport", "h:x", "h:"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_endpoints(bad)

    def test_bracketed_ipv6(self):
        assert parse_endpoints("[::1]:9001") == (("::1", 9001),)
        assert (parse_endpoints("[fe80::1]:1, [::1]:2")
                == (("fe80::1", 1), ("::1", 2)))

    def test_unbracketed_ipv6_names_the_fix(self):
        with pytest.raises(ValueError, match="bracket IPv6"):
            parse_endpoints("::1:9001")

    @pytest.mark.parametrize("bad", ["h:0", "h:-1", "h:65536", "h:100000",
                                     "[::1]:0"])
    def test_rejects_out_of_range_ports(self, bad):
        with pytest.raises(ValueError, match="port"):
            parse_endpoints(bad)

    def test_port_range_boundaries_accepted(self):
        assert parse_endpoints("h:1, i:65535") == (("h", 1), ("i", 65535))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="once"):
            parse_endpoints("a:1, b:2, a:1")

    def test_same_host_different_ports_is_fine(self):
        assert parse_endpoints("a:1, a:2") == (("a", 1), ("a", 2))


class TestLeaseIds:
    def test_deterministic_and_distinct(self):
        assert lease_id("k", 1) == lease_id("k", 1)
        assert lease_id("k", 1) != lease_id("k", 2)
        assert lease_id("k", 1) != lease_id("j", 1)
        assert lease_id("k", 1).startswith("lease-")


# ------------------------------------------------------- endpoint probing

class TestProbeEndpoint:
    def test_real_worker_answers_hello(self, inproc_worker):
        host, port = inproc_worker
        hello = probe_endpoint(host, port)
        assert hello["version"] == PROTOCOL_VERSION
        assert hello["role"] == "worker"

    def test_unreachable_port_raises_oserror(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        with pytest.raises(OSError):
            probe_endpoint("127.0.0.1", port, timeout=1.0)

    def test_version_skew_raises(self):
        def impostor(server, stop):
            server.settimeout(0.1)
            while not stop.is_set():
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                try:
                    recv_frame(conn)
                    send_frame(conn, {"type": "hello", "version": 99,
                                      "role": "worker"})
                except (OSError, FrameError):
                    pass
                finally:
                    conn.close()

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]
        stop = threading.Event()
        thread = threading.Thread(target=impostor, args=(server, stop),
                                  daemon=True)
        thread.start()
        try:
            with pytest.raises(ProtocolVersionError, match="protocol v99"):
                probe_endpoint("127.0.0.1", port)
            backend = WorkerBackend((("127.0.0.1", port),))
            backend.connect_all()
            try:
                assert backend.workers == 0
                assert backend.skewed
            finally:
                backend.close()
        finally:
            stop.set()
            thread.join(timeout=5)
            server.close()

    def test_non_worker_endpoint_raises(self):
        def slammer(server, stop):
            server.settimeout(0.1)
            while not stop.is_set():
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                conn.close()  # speaks no protocol at all

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]
        stop = threading.Event()
        thread = threading.Thread(target=slammer, args=(server, stop),
                                  daemon=True)
        thread.start()
        try:
            with pytest.raises((FrameError, OSError)):
                probe_endpoint("127.0.0.1", port)
        finally:
            stop.set()
            thread.join(timeout=5)
            server.close()


# --------------------------------------------- local backend golden parity

class TestLocalPoolBackend:
    def test_explicit_instance_matches_serial(self, serial_grid):
        backend = LocalPoolBackend(2)
        try:
            results = execute_cells(GRID, backend=backend)
        finally:
            backend.close()  # caller-owned: execute_cells must not close
        assert _encoded(results) == _encoded(serial_grid)

    def test_flags(self):
        backend = LocalPoolBackend(1)
        try:
            assert not backend.attributable
            assert not backend.isolates_failures
            assert not backend.leased
            assert backend.workers == 1
        finally:
            backend.close()


# ------------------------------------------------- distributed end to end

class TestDistributedExecution:
    def test_two_workers_bit_identical_to_serial(self, workers, serial_grid,
                                                 tmp_path):
        endpoints, _ = workers(2)
        journal = RunJournal(tmp_path / "journals")
        results = execute_cells(GRID, backend=endpoints, journal=journal,
                                policy=_policy())
        assert _encoded(results) == _encoded(serial_grid)
        # Leases were granted and cleanly discharged: nothing in flight.
        state = journal.load(journal.last_run_id)
        assert len(state.completed) == len(GRID)
        assert state.leased == {}
        lines = journal.path_for(journal.last_run_id).read_text()
        grants = [json.loads(l) for l in lines.splitlines()
                  if '"lease"' in l and '"grant"' in l]
        assert len(grants) == len(GRID)

    def test_multi_session_worker_serves_two_coordinators(self, workers,
                                                          serial_grid):
        """One ``--sessions 2`` worker multiplexes two concurrent
        coordinators (the ``repro serve`` tenant shape): cells compute
        one at a time under the shared lock, queued cells' heartbeats
        keep their leases fresh, and every result stays bit-identical."""
        endpoints, _ = workers(1, args_extra=["--sessions", "2"])
        outcomes = {}

        def coordinator(name, cells):
            outcomes[name] = execute_cells(cells, backend=endpoints,
                                           policy=_policy())

        threads = [
            threading.Thread(target=coordinator, args=("a", GRID[:2])),
            threading.Thread(target=coordinator, args=("b", GRID[2:])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        merged = outcomes["a"] + outcomes["b"]
        assert _encoded(merged) == _encoded(serial_grid)

    def test_worker_flags(self, workers):
        endpoints, _ = workers(1)
        backend = WorkerBackend(parse_endpoints(endpoints))
        try:
            assert backend.attributable
            assert backend.isolates_failures
            assert backend.leased
            assert backend.connect_all() == 1
        finally:
            backend.close()

    def test_remote_cell_error_marks_only_that_cell(self, workers,
                                                    serial_grid):
        endpoints, _ = workers(2, env_extra={
            "REPRO_FAULT_INJECT": "error=lbm/phast"})
        results = execute_cells(
            GRID, backend=endpoints,
            policy=_policy(retries=1, fail_fast=False))
        assert isinstance(results[2], CellFailure)
        assert results[2].kind is FailureKind.ERROR
        assert "injected" in results[2].message
        ok = [r for i, r in enumerate(results) if i != 2]
        want = [r for i, r in enumerate(serial_grid) if i != 2]
        assert _encoded(ok) == _encoded(want)


class TestProtocolFaults:
    """Each injected fault crosses the wire once, then the retry succeeds."""

    def test_crash_once_worker_lost_then_recovers(self, workers, serial_grid,
                                                  tmp_path):
        latch = tmp_path / "crash.latch"
        endpoints, procs = workers(2, env_extra={
            "REPRO_FAULT_INJECT": f"crash-once=lbm/phast@{latch}"})
        results = execute_cells(GRID, backend=endpoints, policy=_policy())
        assert _encoded(results) == _encoded(serial_grid)
        assert latch.exists()  # the fault really fired...
        time.sleep(0.1)
        assert any(p.poll() is not None for p in procs)  # ...and killed one

    def test_stall_once_expires_lease_then_recovers(self, workers,
                                                    serial_grid, tmp_path):
        latch = tmp_path / "stall.latch"
        endpoints, _ = workers(2, env_extra={
            "REPRO_FAULT_INJECT": f"stall-once=lbm/phast@{latch}"})
        journal = RunJournal(tmp_path / "journals")
        results = execute_cells(
            GRID, backend=endpoints, journal=journal,
            policy=_policy(lease_timeout=2.0, heartbeat_interval=0.25))
        assert _encoded(results) == _encoded(serial_grid)
        lines = journal.path_for(journal.last_run_id).read_text()
        expires = [json.loads(l) for l in lines.splitlines()
                   if '"expire"' in l]
        assert expires  # the lease genuinely lapsed before the retry

    def test_torn_once_worker_lost_then_recovers(self, workers, serial_grid,
                                                 tmp_path):
        latch = tmp_path / "torn.latch"
        endpoints, _ = workers(2, env_extra={
            "REPRO_FAULT_INJECT": f"torn-once=lbm/phast@{latch}"})
        results = execute_cells(GRID, backend=endpoints, policy=_policy())
        assert _encoded(results) == _encoded(serial_grid)
        assert latch.exists()

    def test_corrupt_once_digest_mismatch_then_recovers(self, workers,
                                                        serial_grid,
                                                        tmp_path):
        latch = tmp_path / "corrupt.latch"
        endpoints, _ = workers(2, env_extra={
            "REPRO_FAULT_INJECT": f"corrupt-once=lbm/phast@{latch}"})
        results = execute_cells(GRID, backend=endpoints, policy=_policy())
        assert _encoded(results) == _encoded(serial_grid)
        assert latch.exists()


# ------------------------------------------------------------ golden tests

GOLDEN_N = 60_000  # ~1.5 s per cell: a kill at ~2 s lands mid-grid

GOLDEN_GRID = [
    _cell("exchange2", num_uops=GOLDEN_N),
    _cell("lbm", num_uops=GOLDEN_N),
    _cell("lbm", "phast", num_uops=GOLDEN_N),
    _cell("perlbench1", num_uops=GOLDEN_N),
    _cell("mcf", num_uops=GOLDEN_N),
    _cell("xalancbmk", num_uops=GOLDEN_N),
]


@pytest.fixture(scope="module")
def serial_golden():
    return execute_cells(GOLDEN_GRID)


class TestGoldenCrashRecovery:
    def test_worker_sigkill_mid_grid_bit_identical(self, workers,
                                                   serial_golden):
        endpoints, procs = workers(2)
        timer = threading.Timer(2.0, procs[0].kill)
        timer.start()
        try:
            results = execute_cells(GOLDEN_GRID, backend=endpoints,
                                    policy=_policy(retries=3))
        finally:
            timer.cancel()
        assert _encoded(results) == _encoded(serial_golden)

    def test_coordinator_sigkill_then_resume_bit_identical(
            self, workers, serial_golden, tmp_path):
        endpoints, _ = workers(2)
        journal_dir = tmp_path / "journals"
        driver = tmp_path / "driver.py"
        driver.write_text(f"""
import sys
sys.path.insert(0, {str(SRC)!r})
from repro.experiments.parallel import CellSpec, execute_cells
from repro.experiments.journal import RunJournal
from repro.experiments.resilience import ResiliencePolicy

grid = [CellSpec(mode="accuracy", benchmark=b, num_uops={GOLDEN_N},
                 predictor=p) for b, p in [
    ("exchange2", "mascot"), ("lbm", "mascot"), ("lbm", "phast"),
    ("perlbench1", "mascot"), ("mcf", "mascot"), ("xalancbmk", "mascot")]]
execute_cells(grid, backend={endpoints!r},
              journal=RunJournal({str(journal_dir)!r}),
              policy=ResiliencePolicy(retries=2, backoff_base=0.01,
                                      jitter=0.0))
""")
        coordinator = subprocess.Popen(
            [sys.executable, str(driver)], env=dict(os.environ),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Wait until the journal shows real progress (>=1 cell ok) but
            # the run is still incomplete, then SIGKILL mid-grid.
            deadline = time.monotonic() + 120.0
            run_file = None
            while time.monotonic() < deadline:
                files = list(journal_dir.glob("*.jsonl"))
                if files:
                    run_file = files[0]
                    text = run_file.read_text()
                    if '"event": "ok"' in text:
                        break
                if coordinator.poll() is not None:
                    break
                time.sleep(0.05)
            assert run_file is not None, "coordinator never journaled"
            killed_mid_grid = coordinator.poll() is None
            if killed_mid_grid:
                coordinator.send_signal(signal.SIGKILL)
            coordinator.wait(timeout=30)
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.wait(timeout=10)
        assert killed_mid_grid, "run finished before the kill landed"

        # The journal tail may be torn and leases may still be open —
        # resume on the *same still-running workers* must recompute only
        # what never completed and merge bit-identically.
        run_id = run_file.name[:-len(".jsonl")]
        journal = RunJournal(journal_dir)
        carried = len(journal.load(run_id).completed)
        assert carried < len(GOLDEN_GRID)  # the kill landed mid-grid
        resumed = execute_cells(GOLDEN_GRID, backend=endpoints,
                                journal=journal, resume=run_id,
                                policy=_policy())
        assert _encoded(resumed) == _encoded(serial_golden)
        # The resumed run carried every completed cell from the journal.
        state = journal.load(journal.last_run_id)
        assert len(state.completed) == len(GOLDEN_GRID)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
