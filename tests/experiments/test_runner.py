"""Tests for the prediction-only and timing runners."""

import pytest

from repro.experiments.runner import (
    TraceCache,
    _prune,
    default_cache,
    run_prediction_only,
    run_timing,
)
from repro.core.config import GOLDEN_COVE
from repro.predictors.mascot import Mascot
from repro.predictors.perfect import PerfectMDP
from repro.predictors.phast import Phast
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import small_trace


class TestTraceCache:
    def test_same_key_same_object(self):
        cache = TraceCache()
        t1 = cache.get("exchange2", 2000)
        t2 = cache.get("exchange2", 2000)
        assert t1 is t2

    def test_different_key_different_trace(self):
        cache = TraceCache()
        t1 = cache.get("exchange2", 2000)
        t2 = cache.get("exchange2", 2000, trace_seed=9)
        assert t1 is not t2

    def test_clear(self):
        cache = TraceCache()
        t1 = cache.get("exchange2", 2000)
        cache.clear()
        assert cache.get("exchange2", 2000) is not t1

    def test_default_cache_is_shared(self):
        assert default_cache() is default_cache()


class TestPredictionOnly:
    def test_counts_every_load(self):
        trace = small_trace("perlbench1", 10_000)
        result = run_prediction_only(trace, Mascot())
        expected = sum(1 for u in trace if u.is_load)
        assert result.accuracy.loads == expected
        assert result.accuracy.instructions == len(trace)

    def test_perfect_predictor_never_wrong(self):
        trace = small_trace("perlbench1", 10_000)
        result = run_prediction_only(trace, PerfectMDP())
        assert result.accuracy.mispredictions == 0

    def test_table_distribution_collected(self):
        trace = small_trace("perlbench1", 10_000)
        predictor = Mascot()
        result = run_prediction_only(trace, predictor)
        assert len(result.predictions_per_table) == 9  # 8 tables + base
        assert sum(result.predictions_per_table) == result.accuracy.loads

    def test_f1_recording(self):
        trace = small_trace("perlbench1", 8_000)
        predictor = Mascot(track_f1=True)
        result = run_prediction_only(trace, predictor, f1_period=1000)
        assert result.f1_profile is not None
        assert result.f1_profile.periods >= 1

    def test_f1_requires_mascot(self):
        trace = small_trace("perlbench1", 2_000)
        with pytest.raises(TypeError):
            run_prediction_only(trace, Phast(), f1_period=1000)

    def test_deterministic(self):
        trace = small_trace("gcc1", 8_000)
        r1 = run_prediction_only(trace, Mascot())
        r2 = run_prediction_only(trace, Mascot())
        assert r1.accuracy.outcome_counts == r2.accuracy.outcome_counts


class TestWarmup:
    def test_partial_warmup_denominator(self):
        """Measured instructions are exactly the post-warmup region."""
        trace = small_trace("perlbench1", 10_000)
        warmup = 4_000
        result = run_prediction_only(trace, Mascot(), warmup=warmup)
        assert result.accuracy.instructions == len(trace) - warmup
        expected = sum(1 for u in trace if u.is_load and u.seq >= warmup)
        assert result.accuracy.loads == expected

    def test_warmup_covering_whole_trace(self):
        """Regression: warmup >= len(trace) used to fabricate a phantom
        instruction (max(..., 1)), reporting instructions=1 and an MPKI
        with a bogus denominator.  An all-warmup run measures nothing."""
        trace = small_trace("perlbench1", 5_000)
        result = run_prediction_only(trace, Mascot(), warmup=len(trace))
        assert result.accuracy.instructions == 0
        assert result.accuracy.loads == 0
        assert result.accuracy.mispredictions == 0
        assert result.accuracy.mpki() == 0.0

    def test_warmup_beyond_trace_length(self):
        trace = small_trace("perlbench1", 2_000)
        result = run_prediction_only(trace, Mascot(),
                                     warmup=len(trace) + 10_000)
        assert result.accuracy.instructions == 0
        assert result.accuracy.mpki() == 0.0

    def test_zero_warmup_unchanged(self):
        trace = small_trace("perlbench1", 5_000)
        result = run_prediction_only(trace, Mascot(), warmup=0)
        assert result.accuracy.instructions == len(trace)

    def test_mpki_still_rejects_inconsistent_zero(self):
        """A zero denominator with recorded mispredictions is an
        accounting bug, not an empty run, and must keep raising."""
        trace = small_trace("perlbench1", 5_000)
        result = run_prediction_only(trace, Mascot())
        assert result.accuracy.mispredictions > 0
        with pytest.raises(ValueError):
            result.accuracy.mpki(0)


class TestPruneHorizon:
    def test_prune_bounds_map_size(self):
        mapping = {seq: seq for seq in range(5_000)}
        _prune(mapping, current_seq=5_000)
        assert len(mapping) == 2_048
        assert min(mapping) == 5_000 - 2_048

    def test_prune_keeps_recent_entries(self):
        mapping = {seq: seq * 10 for seq in range(100)}
        _prune(mapping, current_seq=150)
        assert mapping == {seq: seq * 10 for seq in range(100)}

    def test_prune_custom_horizon(self):
        mapping = {seq: 0 for seq in range(1_000)}
        _prune(mapping, current_seq=1_000, horizon=10)
        assert set(mapping) == set(range(990, 1_000))

    def _long_distance_trace(self, filler_stores=4_300):
        """A load whose producing store is far beyond the prune horizon.

        Store seq 0 writes 0x1000; thousands of unrelated stores then
        force the runner's auxiliary maps past their 4096-entry trigger,
        pruning seq 0; finally a load reads 0x1000.  The dependence
        annotation travels on the load itself, so pruning must not
        affect classification.
        """
        uops = [MicroOp(seq=0, pc=0x400, op=OpClass.STORE,
                        address=0x1000, size=8)]
        for i in range(1, filler_stores + 1):
            uops.append(MicroOp(seq=i, pc=0x500 + 4 * i, op=OpClass.STORE,
                                address=0x8000 + 16 * i, size=8))
        uops.append(MicroOp(
            seq=filler_stores + 1, pc=0x9000, op=OpClass.LOAD,
            address=0x1000, size=8,
            store_distance=filler_stores + 1, dep_store_seq=0,
            bypass=BypassClass.DIRECT,
        ))
        return uops

    def test_pruned_store_does_not_break_classification(self):
        """Ground truth is read from the load's annotations, never the
        pruned store_branch/store_pc maps: the oracle stays perfect even
        when the conflicting store fell off the horizon."""
        trace = self._long_distance_trace()
        result = run_prediction_only(trace, PerfectMDP())
        assert result.accuracy.loads == 1
        assert result.accuracy.mispredictions == 0

    def test_below_trigger_identical_to_above(self):
        """The 4096-entry trigger only affects auxiliary hints, so oracle
        accuracy is identical either side of it."""
        short = run_prediction_only(self._long_distance_trace(100),
                                    PerfectMDP())
        long = run_prediction_only(self._long_distance_trace(4_300),
                                   PerfectMDP())
        assert short.accuracy.mispredictions == 0
        assert long.accuracy.mispredictions == 0
        assert short.accuracy.outcome_counts == long.accuracy.outcome_counts


class TestTiming:
    def test_produces_stats(self):
        trace = small_trace("exchange2", 8_000)
        stats = run_timing(trace, Mascot(), config=GOLDEN_COVE)
        assert stats.instructions == len(trace)
        assert stats.ipc > 0

    def test_deterministic(self):
        trace = small_trace("exchange2", 8_000)
        s1 = run_timing(trace, Mascot())
        s2 = run_timing(trace, Mascot())
        assert s1.cycles == s2.cycles

    def test_accuracy_consistent_with_prediction_mode(self):
        """The two modes must agree on ground truth: a perfect predictor
        shows zero mispredictions in both."""
        trace = small_trace("perlbench1", 10_000)
        timing = run_timing(trace, PerfectMDP())
        prediction = run_prediction_only(trace, PerfectMDP())
        assert timing.accuracy.mispredictions == 0
        assert prediction.accuracy.mispredictions == 0
        assert timing.accuracy.loads == prediction.accuracy.loads
