"""Tests for the prediction-only and timing runners."""

import pytest

from repro.experiments.runner import (
    TraceCache,
    default_cache,
    run_prediction_only,
    run_timing,
)
from repro.core.config import GOLDEN_COVE
from repro.predictors.mascot import Mascot
from repro.predictors.perfect import PerfectMDP
from repro.predictors.phast import Phast

from tests.conftest import small_trace


class TestTraceCache:
    def test_same_key_same_object(self):
        cache = TraceCache()
        t1 = cache.get("exchange2", 2000)
        t2 = cache.get("exchange2", 2000)
        assert t1 is t2

    def test_different_key_different_trace(self):
        cache = TraceCache()
        t1 = cache.get("exchange2", 2000)
        t2 = cache.get("exchange2", 2000, trace_seed=9)
        assert t1 is not t2

    def test_clear(self):
        cache = TraceCache()
        t1 = cache.get("exchange2", 2000)
        cache.clear()
        assert cache.get("exchange2", 2000) is not t1

    def test_default_cache_is_shared(self):
        assert default_cache() is default_cache()


class TestPredictionOnly:
    def test_counts_every_load(self):
        trace = small_trace("perlbench1", 10_000)
        result = run_prediction_only(trace, Mascot())
        expected = sum(1 for u in trace if u.is_load)
        assert result.accuracy.loads == expected
        assert result.accuracy.instructions == len(trace)

    def test_perfect_predictor_never_wrong(self):
        trace = small_trace("perlbench1", 10_000)
        result = run_prediction_only(trace, PerfectMDP())
        assert result.accuracy.mispredictions == 0

    def test_table_distribution_collected(self):
        trace = small_trace("perlbench1", 10_000)
        predictor = Mascot()
        result = run_prediction_only(trace, predictor)
        assert len(result.predictions_per_table) == 9  # 8 tables + base
        assert sum(result.predictions_per_table) == result.accuracy.loads

    def test_f1_recording(self):
        trace = small_trace("perlbench1", 8_000)
        predictor = Mascot(track_f1=True)
        result = run_prediction_only(trace, predictor, f1_period=1000)
        assert result.f1_profile is not None
        assert result.f1_profile.periods >= 1

    def test_f1_requires_mascot(self):
        trace = small_trace("perlbench1", 2_000)
        with pytest.raises(TypeError):
            run_prediction_only(trace, Phast(), f1_period=1000)

    def test_deterministic(self):
        trace = small_trace("gcc1", 8_000)
        r1 = run_prediction_only(trace, Mascot())
        r2 = run_prediction_only(trace, Mascot())
        assert r1.accuracy.outcome_counts == r2.accuracy.outcome_counts


class TestTiming:
    def test_produces_stats(self):
        trace = small_trace("exchange2", 8_000)
        stats = run_timing(trace, Mascot(), config=GOLDEN_COVE)
        assert stats.instructions == len(trace)
        assert stats.ipc > 0

    def test_deterministic(self):
        trace = small_trace("exchange2", 8_000)
        s1 = run_timing(trace, Mascot())
        s2 = run_timing(trace, Mascot())
        assert s1.cycles == s2.cycles

    def test_accuracy_consistent_with_prediction_mode(self):
        """The two modes must agree on ground truth: a perfect predictor
        shows zero mispredictions in both."""
        trace = small_trace("perlbench1", 10_000)
        timing = run_timing(trace, PerfectMDP())
        prediction = run_prediction_only(trace, PerfectMDP())
        assert timing.accuracy.mispredictions == 0
        assert prediction.accuracy.mispredictions == 0
        assert timing.accuracy.loads == prediction.accuracy.loads
