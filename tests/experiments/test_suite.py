"""Tests for suite orchestration."""

import pytest

from repro.experiments.suite import (
    PREDICTOR_FACTORIES,
    make_predictor,
    run_accuracy_suite,
    run_ipc_suite,
)
from repro.predictors.mascot import Mascot
from repro.predictors.perfect import PerfectMDP

BENCHES = ["exchange2", "lbm"]
N = 6_000


class TestFactories:
    def test_all_factories_construct(self):
        for name in PREDICTOR_FACTORIES:
            predictor = make_predictor(name)
            assert predictor is not None

    def test_fresh_instances(self):
        assert make_predictor("mascot") is not make_predictor("mascot")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_predictor("oracle-of-delphi")

    def test_named_variants_configured(self):
        assert not make_predictor("mascot-mdp").supports_smb
        assert make_predictor("mascot-opt").storage_kib < Mascot().storage_kib
        assert not make_predictor(
            "tage-no-nd"
        ).config.allocate_nondependencies


class TestIpcSuite:
    def test_grid_complete(self):
        result = run_ipc_suite(["mascot"], BENCHES, N)
        assert set(result.ipc["mascot"]) == set(BENCHES)
        assert set(result.ipc["perfect-mdp"]) == set(BENCHES)

    def test_baseline_added_automatically(self):
        result = run_ipc_suite(["phast"], BENCHES, N)
        assert "perfect-mdp" in result.ipc

    def test_normalised_and_geomean(self):
        result = run_ipc_suite(["mascot"], BENCHES, N)
        normalised = result.normalised("mascot")
        assert set(normalised) == set(BENCHES)
        geomean = result.geomean("mascot")
        assert 0.5 < geomean < 1.5

    def test_baseline_normalises_to_one(self):
        result = run_ipc_suite(["mascot"], BENCHES, N)
        assert result.geomean("perfect-mdp") == pytest.approx(1.0)

    def test_speedup_over(self):
        result = run_ipc_suite(["mascot", "phast"], BENCHES, N)
        delta = result.geomean_speedup_over("mascot", "phast")
        assert -20.0 < delta < 20.0

    def test_stats_kept(self):
        result = run_ipc_suite(["mascot"], BENCHES, N)
        stats = result.stats["mascot"]["lbm"]
        assert stats.instructions == N


class TestAccuracySuite:
    def test_grid_complete(self):
        results = run_accuracy_suite(["mascot", "phast"], BENCHES, N)
        assert set(results) == {"mascot", "phast"}
        for per_bench in results.values():
            assert set(per_bench) == set(BENCHES)

    def test_loads_counted(self):
        results = run_accuracy_suite(["mascot"], BENCHES, N)
        for run in results["mascot"].values():
            assert run.accuracy.loads > 0
