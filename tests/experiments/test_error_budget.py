"""Error-budget gate logic plus a small-scale plumbing run."""

import pytest

from repro.experiments.error_budget import (
    GEOMEAN_ERROR_BUDGET,
    check_error_budget,
    render_error_budget,
    run_error_budget,
)
from repro.sampling import SamplingPolicy


def row(benchmark="mcf", error=0.01, covers=True):
    return {
        "benchmark": benchmark, "full_ipc": 0.4,
        "sampled_ipc": round(0.4 * (1 + error), 6), "error": error,
        "ipc_ci": [0.39, 0.41], "ci_covers_full": covers,
        "k": 3, "coverage": 0.05,
    }


def report(rows):
    import math

    geomean = math.exp(sum(math.log(max(abs(r["error"]), 1e-6))
                           for r in rows) / len(rows))
    return {
        "num_uops": 2_000_000, "predictor": "mascot",
        "engine": "batched",
        "policy": SamplingPolicy(interval_length=10_000).to_dict(),
        "rows": rows, "geomean_abs_error": round(geomean, 6),
    }


class TestCheckErrorBudget:
    def test_clean_report_passes(self):
        assert check_error_budget(report([row(), row("xz", -0.015)])) == []

    def test_geomean_over_budget_flagged(self):
        bad = report([row(error=0.05), row("xz", error=0.04)])
        violations = check_error_budget(bad)
        assert any("geomean" in v for v in violations)

    def test_one_tight_cell_does_not_mask_a_bad_one(self):
        # geomean(0.1%, 4.5%) < 2% — the budget passes, but the bad
        # cell's CI miss must still be flagged.
        mixed = report([row(error=0.001),
                        row("xz", error=0.045, covers=False)])
        assert mixed["geomean_abs_error"] < GEOMEAN_ERROR_BUDGET
        violations = check_error_budget(mixed)
        assert any("outside the reported CI" in v for v in violations)

    def test_coverage_loss_flagged(self):
        violations = check_error_budget(report([row(covers=False)]))
        assert any("outside the reported CI" in v for v in violations)


class TestRunErrorBudget:
    def test_small_grid_produces_coherent_report(self):
        result = run_error_budget(
            benchmarks=("mcf",), num_uops=60_000,
            policy=SamplingPolicy(interval_length=5_000, max_k=3,
                                  warmup_intervals=1))
        (cell,) = result["rows"]
        assert cell["benchmark"] == "mcf"
        assert cell["error"] == pytest.approx(
            cell["sampled_ipc"] / cell["full_ipc"] - 1.0, abs=1e-5)
        assert result["geomean_abs_error"] \
            == pytest.approx(abs(cell["error"]), abs=1e-5)
        assert "geomean" in render_error_budget(result)
