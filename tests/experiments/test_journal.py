"""Tests for the append-only run journal and its resume semantics."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.journal import (
    JOURNAL_DIR_ENV,
    JournalState,
    RunJournal,
    default_journal_dir,
    derive_run_id,
)
from repro.experiments.result_cache import encode_result
from repro.experiments.runner import PredictionRunResult
from repro.analysis.accuracy import AccuracyStats, Outcome, OutcomeKind
from repro.predictors.base import PredictionKind

KEYS = ["a" * 64, "b" * 64, "c" * 64]


def _result(mispredictions=1):
    stats = AccuracyStats()
    stats.instructions = 100
    stats.record(Outcome(OutcomeKind.CORRECT_MDP, PredictionKind.MDP, True))
    for _ in range(mispredictions):
        stats.record(Outcome(OutcomeKind.MISSED_DEP, PredictionKind.NO_DEP,
                             False))
    return PredictionRunResult(accuracy=stats,
                               predictions_per_table=[1, 0])


class TestRunId:
    def test_content_addressed(self):
        assert derive_run_id(KEYS) == derive_run_id(KEYS)
        assert derive_run_id(KEYS) == derive_run_id(list(reversed(KEYS)))
        assert derive_run_id(KEYS) != derive_run_id(KEYS[:2])
        assert derive_run_id(KEYS).startswith("run-")

    def test_repeat_runs_get_suffixes(self, tmp_path):
        journal = RunJournal(tmp_path)
        first = journal.begin(KEYS)
        first.finish()
        second = journal.begin(KEYS)
        second.finish()
        base = derive_run_id(KEYS)
        assert first.run_id == base
        assert second.run_id == f"{base}-2"
        assert journal.last_run_id == f"{base}-2"


class TestRoundTrip:
    def test_ok_records_restore_results(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_dispatch(KEYS[0], 1)
        run.record_ok(KEYS[0], attempts=1, duration=0.5, source="computed",
                      result=_result())
        run.record_fail(KEYS[1], attempts=2, kind="timeout", message="slow")
        run.finish()

        state = journal.load(run.run_id)
        assert set(state.completed) == {KEYS[0]}
        restored = state.completed[KEYS[0]]
        assert restored.to_dict() == _result().to_dict()
        assert set(state.failed) == {KEYS[1]}
        assert state.failed[KEYS[1]]["kind"] == "timeout"

    def test_ok_supersedes_earlier_fail(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_fail(KEYS[0], 1, "error", "first attempt died")
        run.record_ok(KEYS[0], 2, 0.1, "computed", _result())
        run.finish()
        state = journal.load(run.run_id)
        assert KEYS[0] in state.completed
        assert KEYS[0] not in state.failed

    def test_finish_is_idempotent(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.finish()
        run.finish()
        lines = journal.path_for(run.run_id).read_text().splitlines()
        events = [json.loads(line)["event"] for line in lines]
        assert events == ["run-start", "run-end"]


class TestTornTail:
    def test_truncated_final_line_is_skipped(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_ok(KEYS[0], 1, 0.1, "computed", _result())
        run.record_ok(KEYS[1], 1, 0.1, "computed", _result(2))
        run.finish()
        path = journal.path_for(run.run_id)
        lines = path.read_text().splitlines(keepends=True)
        # Tear the file mid-way through the second ok record, as a SIGKILL
        # during that write would: run-start and ok(KEYS[0]) survive.
        path.write_text("".join(lines[:2]) + lines[2][:40])
        state = journal.load(run.run_id)
        assert set(state.completed) == {KEYS[0]}

    def test_missing_run_raises_with_directory(self, tmp_path):
        journal = RunJournal(tmp_path)
        with pytest.raises(FileNotFoundError, match=str(tmp_path)):
            journal.load("run-nonexistent")


class TestLoadMany:
    def test_later_runs_win(self, tmp_path):
        journal = RunJournal(tmp_path)
        first = journal.begin(KEYS)
        first.record_ok(KEYS[0], 1, 0.1, "computed", _result(1))
        first.record_fail(KEYS[1], 1, "error", "boom")
        first.finish()
        second = journal.begin(KEYS)
        second.record_ok(KEYS[1], 1, 0.1, "computed", _result(3))
        second.finish()

        state = journal.load_many([first.run_id, second.run_id])
        assert set(state.completed) == {KEYS[0], KEYS[1]}
        assert state.completed[KEYS[1]].accuracy.mispredictions == 3
        assert state.failed == {}


class TestDefaultDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(JOURNAL_DIR_ENV, str(tmp_path / "j"))
        assert default_journal_dir() == tmp_path / "j"

    def test_falls_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv(JOURNAL_DIR_ENV, raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert default_journal_dir() == tmp_path / "cache" / "journals"

    def test_probe_writable(self, tmp_path):
        assert RunJournal(tmp_path / "new").probe_writable() is None

    def test_probe_unwritable(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        error = RunJournal(blocker / "sub").probe_writable()
        assert error is not None


class TestJournalState:
    def test_encoding_matches_cache(self):
        # The journal stores the exact cache encoding, so results restored
        # from either source are bit-identical.
        result = _result()
        state = JournalState(run_id="x", completed={"k": result})
        assert encode_result(state.completed["k"]) == encode_result(result)


class TestLeaseRecords:
    """Lease grant/renew/expire records and their replay semantics."""

    def test_open_lease_marks_cell_in_flight(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_lease("grant", KEYS[0], "lease-1", "w0")
        run.record_lease("renew", KEYS[0], "lease-1", "w0")
        run.finish()
        state = journal.load(run.run_id)
        assert set(state.leased) == {KEYS[0]}
        assert state.leased[KEYS[0]]["action"] == "renew"
        assert state.leased[KEYS[0]]["worker"] == "w0"

    def test_terminal_records_discharge_the_lease(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_lease("grant", KEYS[0], "lease-1", "w0")
        run.record_ok(KEYS[0], 1, 0.1, "computed", _result())
        run.record_lease("grant", KEYS[1], "lease-2", "w1")
        run.record_fail(KEYS[1], 1, "worker-lost", "socket dropped")
        run.finish()
        state = journal.load(run.run_id)
        assert state.leased == {}
        assert KEYS[0] in state.completed and KEYS[1] in state.failed

    def test_expire_returns_the_cell_to_the_queue(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_lease("grant", KEYS[0], "lease-1", "w0")
        run.record_lease("expire", KEYS[0], "lease-1", "w0")
        run.record_lease("grant", KEYS[1], "lease-2", "w1")
        run.record_lease("expire", KEYS[1], "lease-2", "w1")
        run.record_lease("grant", KEYS[1], "lease-3", "w0")  # retry
        run.finish()
        state = journal.load(run.run_id)
        assert set(state.leased) == {KEYS[1]}
        assert state.leased[KEYS[1]]["lease"] == "lease-3"

    def test_stale_grant_after_ok_is_ignored(self, tmp_path):
        # A duplicated delivery of a lease record after the cell already
        # completed must never push a finished cell back to in-flight.
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_ok(KEYS[0], 1, 0.1, "computed", _result())
        run.record_lease("grant", KEYS[0], "lease-9", "w0")
        run.finish()
        state = journal.load(run.run_id)
        assert KEYS[0] in state.completed
        assert state.leased == {}

    def test_load_many_completion_wins_over_stale_lease(self, tmp_path):
        journal = RunJournal(tmp_path)
        first = journal.begin(KEYS)
        first.record_lease("grant", KEYS[0], "lease-1", "w0")
        first.finish()  # crashed run: lease never discharged
        second = journal.begin(KEYS)
        second.record_ok(KEYS[0], 1, 0.1, "computed", _result())
        second.finish()
        state = journal.load_many([first.run_id, second.run_id])
        assert KEYS[0] in state.completed
        assert state.leased == {}

    def test_torn_tail_mid_lease_record(self, tmp_path):
        # SIGKILL while appending a lease record: the torn line is
        # skipped, everything before it replays.
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_ok(KEYS[0], 1, 0.1, "computed", _result())
        run.record_lease("grant", KEYS[1], "lease-1", "w0")
        run.record_lease("renew", KEYS[1], "lease-1", "w0")
        path = journal.path_for(run.run_id)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:3]) + lines[3][:25])
        state = journal.load(run.run_id)
        assert set(state.completed) == {KEYS[0]}
        assert set(state.leased) == {KEYS[1]}
        assert state.leased[KEYS[1]]["action"] == "grant"


class TestResumeAfterCrash:
    def test_resume_recomputes_only_unleased_unfinished(self, tmp_path,
                                                        monkeypatch):
        """A coordinator killed with one cell leased in flight and one
        never dispatched: resume restores the two completed cells and
        recomputes exactly the other two, bit-identically."""
        from repro.experiments import parallel
        from repro.experiments.parallel import CellSpec, execute_cells
        from repro.experiments.result_cache import cell_key

        grid = [CellSpec(mode="accuracy", benchmark=b, num_uops=3_000,
                         predictor="mascot")
                for b in ("exchange2", "lbm", "mcf", "xalancbmk")]
        keys = [cell_key(spec) for spec in grid]
        journal = RunJournal(tmp_path)
        full = execute_cells(grid, journal=journal)

        # Forge the crashed run: completion of the last two cells never
        # made it to disk, and the third was leased out at the kill.
        lines = journal.path_for(journal.last_run_id).read_text().splitlines()
        kept = [line for line in lines
                if not (('"event": "ok"' in line
                         and (keys[2] in line or keys[3] in line))
                        or '"event": "run-end"' in line)]
        kept.append(json.dumps(
            {"event": "lease", "action": "grant", "key": keys[2],
             "lease": "lease-dead", "worker": "w0"}, sort_keys=True))
        (tmp_path / "run-crashed.jsonl").write_text("\n".join(kept) + "\n")

        state = journal.load("run-crashed")
        assert set(state.completed) == {keys[0], keys[1]}
        assert set(state.leased) == {keys[2]}

        recomputed = []
        real = parallel.compute_cell
        monkeypatch.setattr(parallel, "compute_cell",
                            lambda spec: recomputed.append(spec)
                            or real(spec))
        resumed = execute_cells(grid, journal=journal, resume="run-crashed")
        assert {grid.index(spec) for spec in recomputed} == {2, 3}
        for got, want in zip(resumed, full):
            assert got.to_dict() == want.to_dict()


@pytest.fixture(scope="module")
def crash_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("crash-journals")


class TestCrashSafetyProperty:
    """Any byte-level crash point leaves a loadable, consistent journal."""

    _ENCODED = None  # computed lazily; encode once for all examples

    @classmethod
    def _encoded(cls):
        if cls._ENCODED is None:
            cls._ENCODED = encode_result(_result())
        return cls._ENCODED

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_truncation_loads_disjoint_state(self, data, crash_dir):
        events = data.draw(st.lists(st.tuples(
            st.integers(min_value=0, max_value=2),
            st.sampled_from(["ok", "fail", "grant", "renew", "expire"])),
            max_size=14))
        lines = [json.dumps({"event": "run-start", "v": 1, "run_id": "run-x",
                             "cells": len(KEYS), "keys": KEYS},
                            sort_keys=True)]
        for index, kind in events:
            key = KEYS[index]
            if kind == "ok":
                record = {"event": "ok", "key": key, "attempts": 1,
                          "duration": 0.0, "source": "computed",
                          "result": self._encoded()}
            elif kind == "fail":
                record = {"event": "fail", "key": key, "attempts": 1,
                          "kind": "worker-lost", "message": "boom"}
            else:
                record = {"event": "lease", "action": kind, "key": key,
                          "lease": "lease-p", "worker": "w0"}
            lines.append(json.dumps(record, sort_keys=True))
        text = "\n".join(lines) + "\n"
        cut = data.draw(st.integers(min_value=0, max_value=len(text)))
        journal = RunJournal(crash_dir)
        journal.path_for("run-x").write_text(text[:cut])

        state = journal.load("run-x")  # must never raise
        # A cell is never both finished and in flight.
        assert not (set(state.completed) & set(state.leased))
        assert not (set(state.completed) & set(state.failed))
        # Completion is exactly the intact ok lines of the surviving
        # prefix, each restored bit-identically to what was written.
        surviving_ok = set()
        for line in text[:cut].splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("event") == "ok":
                surviving_ok.add(record["key"])
        assert set(state.completed) == surviving_ok
        for key in surviving_ok:
            assert encode_result(state.completed[key]) == self._encoded()
