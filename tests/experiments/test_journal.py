"""Tests for the append-only run journal and its resume semantics."""

import json

import pytest

from repro.experiments.journal import (
    JOURNAL_DIR_ENV,
    JournalState,
    RunJournal,
    default_journal_dir,
    derive_run_id,
)
from repro.experiments.result_cache import encode_result
from repro.experiments.runner import PredictionRunResult
from repro.analysis.accuracy import AccuracyStats, Outcome, OutcomeKind
from repro.predictors.base import PredictionKind

KEYS = ["a" * 64, "b" * 64, "c" * 64]


def _result(mispredictions=1):
    stats = AccuracyStats()
    stats.instructions = 100
    stats.record(Outcome(OutcomeKind.CORRECT_MDP, PredictionKind.MDP, True))
    for _ in range(mispredictions):
        stats.record(Outcome(OutcomeKind.MISSED_DEP, PredictionKind.NO_DEP,
                             False))
    return PredictionRunResult(accuracy=stats,
                               predictions_per_table=[1, 0])


class TestRunId:
    def test_content_addressed(self):
        assert derive_run_id(KEYS) == derive_run_id(KEYS)
        assert derive_run_id(KEYS) == derive_run_id(list(reversed(KEYS)))
        assert derive_run_id(KEYS) != derive_run_id(KEYS[:2])
        assert derive_run_id(KEYS).startswith("run-")

    def test_repeat_runs_get_suffixes(self, tmp_path):
        journal = RunJournal(tmp_path)
        first = journal.begin(KEYS)
        first.finish()
        second = journal.begin(KEYS)
        second.finish()
        base = derive_run_id(KEYS)
        assert first.run_id == base
        assert second.run_id == f"{base}-2"
        assert journal.last_run_id == f"{base}-2"


class TestRoundTrip:
    def test_ok_records_restore_results(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_dispatch(KEYS[0], 1)
        run.record_ok(KEYS[0], attempts=1, duration=0.5, source="computed",
                      result=_result())
        run.record_fail(KEYS[1], attempts=2, kind="timeout", message="slow")
        run.finish()

        state = journal.load(run.run_id)
        assert set(state.completed) == {KEYS[0]}
        restored = state.completed[KEYS[0]]
        assert restored.to_dict() == _result().to_dict()
        assert set(state.failed) == {KEYS[1]}
        assert state.failed[KEYS[1]]["kind"] == "timeout"

    def test_ok_supersedes_earlier_fail(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_fail(KEYS[0], 1, "error", "first attempt died")
        run.record_ok(KEYS[0], 2, 0.1, "computed", _result())
        run.finish()
        state = journal.load(run.run_id)
        assert KEYS[0] in state.completed
        assert KEYS[0] not in state.failed

    def test_finish_is_idempotent(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.finish()
        run.finish()
        lines = journal.path_for(run.run_id).read_text().splitlines()
        events = [json.loads(line)["event"] for line in lines]
        assert events == ["run-start", "run-end"]


class TestTornTail:
    def test_truncated_final_line_is_skipped(self, tmp_path):
        journal = RunJournal(tmp_path)
        run = journal.begin(KEYS)
        run.record_ok(KEYS[0], 1, 0.1, "computed", _result())
        run.record_ok(KEYS[1], 1, 0.1, "computed", _result(2))
        run.finish()
        path = journal.path_for(run.run_id)
        lines = path.read_text().splitlines(keepends=True)
        # Tear the file mid-way through the second ok record, as a SIGKILL
        # during that write would: run-start and ok(KEYS[0]) survive.
        path.write_text("".join(lines[:2]) + lines[2][:40])
        state = journal.load(run.run_id)
        assert set(state.completed) == {KEYS[0]}

    def test_missing_run_raises_with_directory(self, tmp_path):
        journal = RunJournal(tmp_path)
        with pytest.raises(FileNotFoundError, match=str(tmp_path)):
            journal.load("run-nonexistent")


class TestLoadMany:
    def test_later_runs_win(self, tmp_path):
        journal = RunJournal(tmp_path)
        first = journal.begin(KEYS)
        first.record_ok(KEYS[0], 1, 0.1, "computed", _result(1))
        first.record_fail(KEYS[1], 1, "error", "boom")
        first.finish()
        second = journal.begin(KEYS)
        second.record_ok(KEYS[1], 1, 0.1, "computed", _result(3))
        second.finish()

        state = journal.load_many([first.run_id, second.run_id])
        assert set(state.completed) == {KEYS[0], KEYS[1]}
        assert state.completed[KEYS[1]].accuracy.mispredictions == 3
        assert state.failed == {}


class TestDefaultDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(JOURNAL_DIR_ENV, str(tmp_path / "j"))
        assert default_journal_dir() == tmp_path / "j"

    def test_falls_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv(JOURNAL_DIR_ENV, raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert default_journal_dir() == tmp_path / "cache" / "journals"

    def test_probe_writable(self, tmp_path):
        assert RunJournal(tmp_path / "new").probe_writable() is None

    def test_probe_unwritable(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        error = RunJournal(blocker / "sub").probe_writable()
        assert error is not None


class TestJournalState:
    def test_encoding_matches_cache(self):
        # The journal stores the exact cache encoding, so results restored
        # from either source are bit-identical.
        result = _result()
        state = JournalState(run_id="x", completed={"k": result})
        assert encode_result(state.completed["k"]) == encode_result(result)
