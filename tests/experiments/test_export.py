"""Tests for CSV export of figure results."""

import pytest

from repro.experiments import figures
from repro.experiments.export import export_csv, to_csv_rows

BENCHES = ["exchange2", "lbm"]
N = 5_000


class TestToCsvRows:
    def test_ipc_figure(self):
        result = figures.fig7_ipc_full(BENCHES, N)
        rows = to_csv_rows(result)
        assert rows[0] == ["benchmark", "nosq", "phast", "mascot"]
        assert rows[-1][0] == "geomean"
        assert len(rows) == 2 + len(BENCHES)

    def test_fig2(self):
        result = figures.fig2_smb_opportunities(BENCHES, N)
        rows = to_csv_rows(result)
        assert rows[0][0] == "benchmark"
        assert len(rows) == 1 + len(BENCHES)

    def test_fig8(self):
        result = figures.fig8_mispredictions(BENCHES, N)
        rows = to_csv_rows(result)
        assert rows[0] == ["predictor", "total", "false_dependencies",
                           "speculative_errors"]

    def test_fig10(self):
        result = figures.fig10_prediction_mix(BENCHES, N)
        rows = to_csv_rows(result)
        assert "pred_no_dep" in rows[0]
        for row in rows[1:]:
            assert abs(sum(row[1:4]) - 100.0) < 0.01

    def test_fig13(self):
        result = figures.fig13_table_usage(BENCHES, N)
        rows = to_csv_rows(result)
        assert rows[1][0] == "table 1"
        assert rows[-1][0] == "base"

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_csv_rows(object())


class TestExportCsv:
    def test_writes_parseable_file(self, tmp_path):
        result = figures.fig13_table_usage(["exchange2"], N)
        path = export_csv(result, tmp_path / "fig13.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "source,percent"
        assert len(lines) == 10  # 8 tables + base + header
        total = sum(float(line.split(",")[1]) for line in lines[1:])
        assert total == pytest.approx(100.0, abs=0.1)
