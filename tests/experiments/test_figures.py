"""Tests for the figure/table generators (reduced-size runs).

Each figure function is exercised on a two-benchmark, short-trace grid:
enough to validate structure, rendering and the qualitative relations the
paper reports, while keeping the suite fast.  The full-scale regenerations
live in benchmarks/.
"""

import pytest

from repro.experiments import figures
from repro.core.config import GOLDEN_COVE, LION_COVE

BENCHES = ["perlbench1", "lbm"]
N = 8_000


@pytest.fixture(scope="module")
def fig2():
    return figures.fig2_smb_opportunities(BENCHES, N)


class TestFig2:
    def test_structure(self, fig2):
        assert set(fig2.percentages) == set(BENCHES)
        for per in fig2.percentages.values():
            assert set(per) == {"DirectBypass", "NoOffset", "Offset",
                                "MDP Only"}

    def test_direct_dominates(self, fig2):
        """Fig. 2: 'the overwhelming fraction of opportunities occur in
        the simple case'."""
        for per in fig2.percentages.values():
            assert per["DirectBypass"] >= per["Offset"]

    def test_percent_of_loads_bounded(self, fig2):
        for per in fig2.percentages.values():
            total = sum(per.values())
            assert 0.0 <= total <= 100.0

    def test_render(self, fig2):
        text = fig2.render()
        assert "Fig. 2" in text
        for bench in BENCHES:
            assert bench in text


class TestTables:
    def test_table1_rows(self):
        result = figures.table1_configuration(GOLDEN_COVE)
        text = result.render()
        assert "512/204/192/114" in text
        assert "golden-cove" in text

    def test_table1_lion_cove(self):
        result = figures.table1_configuration(LION_COVE)
        assert "576" in result.render()

    def test_table2_contains_paper_sizes(self):
        text = figures.table2_sizes().render()
        assert "14.00" in text   # MASCOT
        assert "14.50" in text   # PHAST
        assert "19.00" in text   # NoSQ


class TestIpcFigures:
    def test_fig7_structure(self):
        result = figures.fig7_ipc_full(BENCHES, N)
        assert result.predictors == ["nosq", "phast", "mascot"]
        for p in result.predictors:
            assert set(result.normalised(p)) == set(BENCHES)
        text = result.render()
        assert "geomean" in text

    def test_fig9_structure(self):
        result = figures.fig9_ipc_mdp_only(BENCHES, N)
        assert result.predictors == ["store-sets", "phast", "mascot-mdp"]
        assert "Fig. 9" in result.render()


class TestFig8:
    def test_totals_and_split(self):
        result = figures.fig8_mispredictions(BENCHES, N)
        for name in ("nosq", "phast", "mascot"):
            assert result.totals[name] >= 0
            assert (result.false_dependencies[name]
                    + result.speculative_errors[name]
                    >= result.false_dependencies[name])
        assert "Fig. 8" in result.render()

    def test_mascot_beats_baselines(self):
        """The paper's central accuracy claim, at reduced scale."""
        result = figures.fig8_mispredictions(BENCHES, 15_000)
        assert result.totals["mascot"] < result.totals["nosq"]
        assert result.totals["mascot"] < result.totals["phast"]

    def test_reduction_vs(self):
        result = figures.fig8_mispredictions(BENCHES, N)
        reduction = result.reduction_vs("mascot", "nosq")
        assert 0.0 <= reduction <= 100.0


class TestFig10:
    def test_mixes_sum_to_100(self):
        result = figures.fig10_prediction_mix(BENCHES, N)
        for per in result.prediction_mix.values():
            assert sum(per.values()) == pytest.approx(100.0)

    def test_no_dep_dominates(self):
        """Fig. 10: 'over 80% of all predictions are of no dependency'
        on average — at reduced scale we check a clear majority."""
        result = figures.fig10_prediction_mix(["lbm"], N)
        assert result.prediction_mix["lbm"]["no_dep"] > 50.0

    def test_render(self):
        assert "Fig. 10" in figures.fig10_prediction_mix(BENCHES, N).render()


class TestFig11:
    def test_ablation_has_more_false_deps(self):
        result = figures.fig11_ablation(BENCHES, N)
        assert result.false_dep_ratio > 1.0
        assert "Fig. 11" in result.render()


class TestFig12:
    def test_cores_compared(self):
        result = figures.fig12_future_architectures(
            ["perlbench1"], N, cores=(GOLDEN_COVE, LION_COVE)
        )
        assert set(result.geomeans) == {"golden-cove", "lion-cove"}
        for values in result.geomeans.values():
            assert set(values) == {"perfect-mdp-smb", "mascot"}
        assert "Fig. 12" in result.render()


class TestFig13:
    def test_shares_sum_to_100(self):
        result = figures.fig13_table_usage(BENCHES, N)
        assert sum(result.shares) == pytest.approx(100.0)
        assert len(result.shares) == 9
        assert result.labels[-1] == "base"

    def test_base_is_large(self):
        """Most loads have no matching entry or hit low tables."""
        result = figures.fig13_table_usage(["lbm"], N)
        assert result.shares[-1] > 10.0


class TestFig14:
    def test_profile_structure(self):
        result = figures.fig14_f1_ranking(["perlbench1"], N,
                                          period_loads=1000)
        assert len(result.profile.ranked) == 8
        assert "Fig. 14" in result.render()


class TestFig15:
    def test_variants_and_sizes(self):
        result = figures.fig15_mascot_opt(BENCHES, N)
        assert set(result.points) == {
            "mascot", "mascot-opt", "mascot-opt-tag2", "mascot-opt-tag4",
            "mascot-opt-tag6",
        }
        ratio, kib = result.points["mascot-opt-tag4"]
        assert kib == pytest.approx(10.1, abs=0.1)
        assert 0.8 < ratio < 1.2
        assert "Fig. 15" in result.render()

    def test_sizes_strictly_decreasing(self):
        result = figures.fig15_mascot_opt(BENCHES, N)
        sizes = [result.points[n][1] for n in
                 ("mascot", "mascot-opt", "mascot-opt-tag2",
                  "mascot-opt-tag4", "mascot-opt-tag6")]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))


class TestPartialGridAnnotation:
    """Under --keep-going, aggregate figures must not silently publish
    totals computed over a partial grid: the excluded cells are recorded
    and render() carries an explicit warning footer."""

    def test_fig8_records_and_renders_excluded_cells(self, monkeypatch):
        from repro.experiments.resilience import ResiliencePolicy
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/phast")
        result = figures.fig8_mispredictions(
            BENCHES, N, policy=ResiliencePolicy(fail_fast=False))
        assert len(result.failures) == 1
        assert result.failures[0].spec.benchmark == "lbm"
        text = result.render()
        assert "WARNING" in text and "excluded" in text
        assert "lbm/phast" in text

    def test_complete_grid_renders_no_warning(self):
        result = figures.fig8_mispredictions(BENCHES, N)
        assert result.failures == []
        assert "WARNING" not in result.render()

    def test_fig13_records_excluded_cells(self, monkeypatch):
        from repro.experiments.resilience import ResiliencePolicy
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/mascot")
        result = figures.fig13_table_usage(
            BENCHES, N, policy=ResiliencePolicy(fail_fast=False))
        assert len(result.failures) == 1
        assert "WARNING" in result.render()
