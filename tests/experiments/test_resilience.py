"""Failure-path tests for the fault-tolerant suite engine.

Faults are injected through the ``REPRO_FAULT_INJECT`` environment
variable (inherited by worker processes, where monkeypatching cannot
reach): worker exceptions, SIGKILL crashes (→ ``BrokenProcessPool``
recovery) and hangs (→ timeout enforcement).  The golden test at the end
is the acceptance scenario from the issue: crash + timeout + corrupted
cache entry in one run, then a resume that re-runs exactly the failed
cells with bit-identical carried results.
"""

import dataclasses

import pytest

from repro.experiments import parallel
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import CellSpec, execute_cells
from repro.experiments.resilience import (
    CellFailure,
    CellTimeoutError,
    FailureKind,
    ResiliencePolicy,
    backoff_delay,
    classify_failure,
    deterministic_jitter,
    parse_fault_spec,
)
from repro.experiments.result_cache import ResultCache, cell_key

N = 3_000


def _cell(benchmark, predictor="mascot"):
    return CellSpec(mode="accuracy", benchmark=benchmark, num_uops=N,
                    predictor=predictor)


#: A small mixed grid; faults target specific (benchmark, predictor)
#: pairs so every other cell must come through unscathed.
GRID = [_cell("exchange2"), _cell("lbm"), _cell("lbm", "phast"),
        _cell("perlbench1")]


class TestPolicy:
    def test_default_is_fail_fast_no_retries(self):
        policy = ResiliencePolicy()
        assert policy.fail_fast and policy.retries == 0
        assert policy.cell_timeout is None

    @pytest.mark.parametrize("bad", [
        {"retries": -1}, {"cell_timeout": 0}, {"cell_timeout": -1.0},
        {"max_pool_rebuilds": -1},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ResiliencePolicy(**bad)

    def test_jitter_is_deterministic_and_bounded(self):
        for attempt in (1, 2, 5):
            a = deterministic_jitter("somekey", attempt)
            assert a == deterministic_jitter("somekey", attempt)
            assert 0.0 <= a < 1.0
        assert (deterministic_jitter("key-a", 1)
                != deterministic_jitter("key-b", 1))
        assert (deterministic_jitter("key-a", 1)
                != deterministic_jitter("key-a", 2))

    def test_backoff_grows_and_caps(self):
        policy = ResiliencePolicy(retries=10, backoff_base=1.0,
                                  backoff_factor=2.0, backoff_max=4.0,
                                  jitter=0.0)
        delays = [backoff_delay(policy, "k", a) for a in (1, 2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_backoff_jitter_within_fraction(self):
        policy = ResiliencePolicy(retries=1, backoff_base=2.0, jitter=0.5)
        delay = backoff_delay(policy, "k", 1)
        assert 2.0 <= delay <= 3.0
        assert delay == backoff_delay(policy, "k", 1)  # reproducible


class TestFaultSpecParsing:
    def test_empty_and_switch_values(self):
        assert parse_fault_spec("") == []
        assert parse_fault_spec("0") == []
        assert parse_fault_spec("1") == []

    def test_clauses(self):
        clauses = parse_fault_spec(
            "error=lbm/phast;hang=mcf/nosq@2.5")
        assert [c.kind for c in clauses] == ["error", "hang"]
        assert clauses[0].benchmark == "lbm"
        assert clauses[0].predictor == "phast"
        assert not clauses[0].once
        assert clauses[1].arg == "2.5"

    def test_once_requires_latch(self, tmp_path):
        clause, = parse_fault_spec(f"crash-once=lbm/phast@{tmp_path}/latch")
        assert clause.once and clause.kind == "crash"
        with pytest.raises(ValueError):
            parse_fault_spec("crash-once=lbm/phast")

    @pytest.mark.parametrize("bad", [
        "explode=lbm/phast", "error=lbm", "error", "error=/phast",
    ])
    def test_rejects_bad_clauses(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestClassify:
    def test_kinds(self):
        from concurrent.futures.process import BrokenProcessPool
        assert classify_failure(RuntimeError("x")) is FailureKind.ERROR
        assert (classify_failure(CellTimeoutError("x"))
                is FailureKind.TIMEOUT)
        assert (classify_failure(BrokenProcessPool("x"))
                is FailureKind.WORKER_LOST)


class TestInjectedError:
    def test_fail_fast_propagates(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/phast")
        with pytest.raises(RuntimeError, match="injected fault"):
            execute_cells(GRID)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_keep_going_marks_only_the_faulty_cell(self, monkeypatch, jobs):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "error=lbm/phast")
        policy = ResiliencePolicy(fail_fast=False)
        results = execute_cells(GRID, jobs=jobs, policy=policy)
        kinds = [type(r).__name__ for r in results]
        assert kinds == ["PredictionRunResult", "PredictionRunResult",
                         "CellFailure", "PredictionRunResult"]
        failure = results[2]
        assert failure.kind is FailureKind.ERROR
        assert failure.attempts == 1
        assert "injected fault" in failure.message

    def test_retry_recovers_from_transient_error(self, monkeypatch,
                                                 tmp_path):
        latch = tmp_path / "latch"
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"error-once=lbm/phast@{latch}")
        policy = ResiliencePolicy(retries=1, backoff_base=0.01)
        results = execute_cells(GRID, policy=policy)
        assert all(not isinstance(r, CellFailure) for r in results)
        assert latch.exists()
        clean = execute_cells([GRID[2]])
        assert results[2].to_dict() == clean[0].to_dict()


class TestWorkerCrash:
    def test_crash_once_recovers_without_losing_innocents(self,
                                                          monkeypatch,
                                                          tmp_path):
        """A SIGKILLed worker breaks the pool mid-wave; the supervisor
        rebuilds, re-runs the suspects, and every cell completes because
        the crash does not recur."""
        latch = tmp_path / "latch"
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"crash-once=lbm/phast@{latch}")
        results = execute_cells(GRID, jobs=2,
                                policy=ResiliencePolicy(fail_fast=False))
        assert all(not isinstance(r, CellFailure) for r in results)
        assert latch.exists()
        clean = [execute_cells([cell])[0] for cell in GRID]
        for got, want in zip(results, clean):
            assert got.to_dict() == want.to_dict()

    def test_persistent_crash_is_attributed_to_the_culprit(self,
                                                           monkeypatch):
        """crash-every-time: probation re-runs the suspects solo, so the
        culprit is charged and the innocents all complete."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash=lbm/phast")
        results = execute_cells(GRID, jobs=2,
                                policy=ResiliencePolicy(fail_fast=False))
        assert isinstance(results[2], CellFailure)
        assert results[2].kind is FailureKind.WORKER_LOST
        assert results[2].attempts >= 1
        for i in (0, 1, 3):
            assert not isinstance(results[i], CellFailure)

    def test_persistent_crash_fail_fast_raises(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash=lbm/phast")
        with pytest.raises(BrokenProcessPool):
            execute_cells(GRID, jobs=2)


class TestTimeout:
    def test_hung_cell_times_out_keep_going(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang=lbm/phast@30")
        policy = ResiliencePolicy(cell_timeout=1.5, fail_fast=False)
        results = execute_cells(GRID, jobs=2, policy=policy)
        assert isinstance(results[2], CellFailure)
        assert results[2].kind is FailureKind.TIMEOUT
        for i in (0, 1, 3):
            assert not isinstance(results[i], CellFailure)

    def test_hung_cell_fail_fast_raises_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang=lbm/phast@30")
        policy = ResiliencePolicy(cell_timeout=1.0)
        with pytest.raises(CellTimeoutError):
            execute_cells([GRID[2]], policy=policy)

    def test_transient_hang_recovers_with_retry(self, monkeypatch,
                                                tmp_path):
        latch = tmp_path / "latch"
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"hang-once=lbm/phast@{latch}")
        policy = ResiliencePolicy(cell_timeout=2.0, retries=1,
                                  backoff_base=0.01, fail_fast=False)
        results = execute_cells(GRID, jobs=2, policy=policy)
        assert all(not isinstance(r, CellFailure) for r in results)

    def test_queued_cells_do_not_accrue_timeout(self, monkeypatch):
        """A cell's timeout clock must not run while it waits for a free
        worker: four ~0.7s cells through one worker exceed the 1.5s
        timeout cumulatively, but no single cell ever does."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang=exchange2/mascot@0.7")
        policy = ResiliencePolicy(cell_timeout=1.5)  # fail-fast: any
        grid = [_cell("exchange2")] * 4              # timeout raises
        results = execute_cells(grid, jobs=1, policy=policy)
        assert all(not isinstance(r, CellFailure) for r in results)


class TestDegradedSerial:
    def test_repeated_pool_loss_degrades_with_warning(self, monkeypatch):
        """With every worker crashing on two different cells and zero
        tolerated rebuilds, the supervisor degrades to inline execution
        (which downgrades injected crashes to errors) instead of aborting
        the innocents."""
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "crash=lbm/phast;crash=lbm/mascot")
        policy = ResiliencePolicy(fail_fast=False, max_pool_rebuilds=0)
        with pytest.warns(RuntimeWarning, match="degrading to"):
            results = execute_cells(GRID, jobs=2, policy=policy)
        assert not isinstance(results[0], CellFailure)
        assert not isinstance(results[3], CellFailure)
        for i in (1, 2):
            assert isinstance(results[i], CellFailure)
            assert results[i].kind is FailureKind.ERROR
            assert "downgraded inline" in results[i].message


class TestInlineDowngrade:
    def test_inline_crash_becomes_error(self, monkeypatch):
        """jobs=1 runs cells in the supervisor process: an injected crash
        must not SIGKILL the test process."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash=lbm/phast")
        results = execute_cells(GRID, jobs=1,
                                policy=ResiliencePolicy(fail_fast=False))
        assert isinstance(results[2], CellFailure)
        assert results[2].kind is FailureKind.ERROR

    def test_inline_hang_becomes_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang=lbm/phast")
        results = execute_cells(GRID, jobs=1,
                                policy=ResiliencePolicy(fail_fast=False))
        assert isinstance(results[2], CellFailure)
        assert results[2].kind is FailureKind.ERROR


class TestResolveJournal:
    def test_disabled_forms(self):
        assert parallel.resolve_journal(None) is None
        assert parallel.resolve_journal(False) is None

    def test_path_and_instance(self, tmp_path):
        journal = parallel.resolve_journal(tmp_path / "j")
        assert isinstance(journal, RunJournal)
        assert journal.directory == tmp_path / "j"
        assert parallel.resolve_journal(journal) is journal

    def test_unwritable_journal_warns_and_disables(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.warns(RuntimeWarning, match="journal disabled"):
            assert parallel.resolve_journal(blocker / "sub") is None


class TestResolveCacheWritability:
    def test_unwritable_cache_warns_and_degrades_to_read_only(self,
                                                              tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.warns(RuntimeWarning, match="read-only"):
            store = parallel.resolve_cache(blocker / "sub")
        assert isinstance(store, ResultCache)
        assert store.read_only

    def test_unwritable_cache_run_still_completes(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.warns(RuntimeWarning):
            results = execute_cells([GRID[0]], cache=blocker / "sub")
        assert not isinstance(results[0], CellFailure)

    def test_read_only_cache_serves_hits_and_skips_stores(self, tmp_path,
                                                          monkeypatch):
        """A fully warm cache in an unwritable directory (shared or
        CI-mounted artifacts) must still perform zero simulations."""
        first = execute_cells([GRID[0]], cache=ResultCache(tmp_path / "c"))

        monkeypatch.setattr(ResultCache, "probe_writable",
                            lambda self: "read-only file system")
        monkeypatch.setattr(
            parallel, "compute_cell",
            lambda spec: pytest.fail("recomputed despite warm cache"))
        store = ResultCache(tmp_path / "c")
        with pytest.warns(RuntimeWarning, match="read-only"):
            results = execute_cells([GRID[0]], cache=store)
        assert results[0].to_dict() == first[0].to_dict()
        assert store.read_only
        assert store.hits == 1 and store.stores == 0


class TestJournalledExecution:
    def test_journal_records_and_resume_skips(self, tmp_path, monkeypatch):
        journal = RunJournal(tmp_path / "journals")
        first = execute_cells(GRID, journal=journal)
        run_id = journal.last_run_id
        assert run_id is not None

        # Resume must restore every completed cell without recomputing.
        monkeypatch.setattr(
            parallel, "compute_cell",
            lambda spec: pytest.fail(f"recomputed {spec} despite resume"))
        resumed = execute_cells(GRID, journal=journal, resume=run_id)
        for got, want in zip(resumed, first):
            assert got.to_dict() == want.to_dict()
        # The resumed run journals its carried results under a new id.
        assert journal.last_run_id != run_id
        state = journal.load(journal.last_run_id)
        assert len(state.completed) == len(GRID)

    def test_resume_honours_journal_dir_when_journaling_off(self, tmp_path,
                                                            monkeypatch):
        """When journaling resolves off (here: unwritable directory), the
        resume loader must still read from the directory the journal spec
        names, not the default."""
        journal = RunJournal(tmp_path / "journals")
        first = execute_cells(GRID, journal=journal)
        run_id = journal.last_run_id

        monkeypatch.setattr(RunJournal, "probe_writable",
                            lambda self: "read-only file system")
        monkeypatch.setattr(
            parallel, "compute_cell",
            lambda spec: pytest.fail("recomputed despite resume"))
        with pytest.warns(RuntimeWarning, match="journal disabled"):
            resumed = execute_cells(GRID, journal=tmp_path / "journals",
                                    resume=run_id)
        for got, want in zip(resumed, first):
            assert got.to_dict() == want.to_dict()


class TestGoldenAcceptance:
    """The issue's acceptance scenario, end to end.

    One run with an injected worker crash, one timing-out cell and one
    pre-corrupted cache entry completes under --keep-going, marking
    exactly the affected cells as CellFailure; a subsequent --resume
    re-runs only those cells and every previously completed cell is
    restored bit-identically.
    """

    def test_crash_timeout_corruption_then_resume(self, tmp_path,
                                                  monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        journal = RunJournal(tmp_path / "journals")
        grid = [
            _cell("exchange2", "mascot"), _cell("exchange2", "phast"),
            _cell("lbm", "mascot"), _cell("lbm", "phast"),
            _cell("perlbench1", "mascot"), _cell("perlbench1", "phast"),
        ]

        # Pre-corrupt the cache entry for exchange2/mascot: recompute and
        # quarantine, never a crash or a wrong result.
        pristine = execute_cells([grid[0]], cache=cache)
        corrupt_path = cache.path_for(cell_key(grid[0]))
        corrupt_path.write_text('{"v": 2, "key": "wrong", "result": 1}')

        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            "crash=lbm/phast;hang=perlbench1/mascot@30")
        policy = ResiliencePolicy(cell_timeout=2.5, fail_fast=False)
        results = execute_cells(grid, jobs=2, cache=cache, policy=policy,
                                journal=journal)
        first_run = journal.last_run_id

        failed = {i for i, r in enumerate(results)
                  if isinstance(r, CellFailure)}
        assert failed == {3, 4}
        assert results[3].kind is FailureKind.WORKER_LOST
        assert results[4].kind is FailureKind.TIMEOUT
        # The corrupted entry was quarantined and its cell recomputed
        # bit-identically.
        assert cache.quarantined == 1
        assert (cache.quarantine_dir / corrupt_path.name).exists()
        assert results[0].to_dict() == pristine[0].to_dict()

        # --resume: only the two failed cells are re-dispatched.  With the
        # faults cleared they now succeed; carried cells are restored from
        # the journal bit-identically without recomputation (cache off to
        # prove the journal alone suffices).
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        recomputed = []
        real = parallel.compute_cell
        monkeypatch.setattr(parallel, "compute_cell",
                            lambda spec: recomputed.append(spec)
                            or real(spec))
        resumed = execute_cells(grid, jobs=1, cache=None, journal=journal,
                                resume=first_run)
        assert {grid.index(s) for s in recomputed} == {3, 4}
        assert all(not isinstance(r, CellFailure) for r in resumed)

        # Bit-identical to a pristine serial grid, carried and re-run
        # cells alike.
        clean = execute_cells(grid, jobs=1)
        for got, want in zip(resumed, clean):
            assert got.to_dict() == want.to_dict()
