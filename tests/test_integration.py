"""Cross-module integration tests.

These exercise whole paths through the system — generator → predictor →
pipeline → statistics — and check the qualitative relations the paper's
evaluation rests on, at reduced scale.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    GOLDEN_COVE,
    LION_COVE,
    Mascot,
    PerfectMDP,
    PerfectMDPSMB,
    Phast,
    Pipeline,
    StoreSets,
    NoSQ,
    generate_trace,
)
from repro.predictors.configs import MASCOT_DEFAULT

from tests.conftest import small_trace


class TestPaperHeadlines:
    """The paper's core qualitative claims at small scale."""

    @pytest.fixture(scope="class")
    def results(self):
        trace = small_trace("perlbench1", 40_000)
        out = {}
        for predictor in (PerfectMDP(), PerfectMDPSMB(), Mascot(),
                          Phast(), NoSQ(), StoreSets()):
            out[predictor.name] = Pipeline(predictor).run(trace)
        return out

    def test_mascot_beats_phast(self, results):
        assert results["mascot"].ipc > results["phast"].ipc

    def test_mascot_beats_nosq(self, results):
        assert results["mascot"].ipc > results["nosq"].ipc

    def test_mascot_beats_perfect_mdp(self, results):
        """SMB lets MASCOT beat the no-bypass oracle (Fig. 7)."""
        assert results["mascot"].ipc > results["perfect-mdp"].ipc

    def test_perfect_smb_is_the_ceiling(self, results):
        assert results["perfect-mdp-smb"].ipc >= results["mascot"].ipc

    def test_oracles_never_squash(self, results):
        assert results["perfect-mdp"].memory_squashes == 0
        assert results["perfect-mdp-smb"].memory_squashes == 0

    def test_mascot_bypasses_substantially(self, results):
        assert (results["mascot"].loads_bypassed
                > 0.5 * results["perfect-mdp-smb"].loads_bypassed)

    def test_fewest_mispredictions(self, results):
        mascot = results["mascot"].accuracy.mispredictions
        assert mascot < results["phast"].accuracy.mispredictions
        assert mascot < results["nosq"].accuracy.mispredictions


class TestTwoModesAgree:
    def test_dependence_ground_truth_identical(self):
        """Timing and prediction-only modes classify the same loads the
        same way for an oracle (which never mispredicts)."""
        from repro.experiments.runner import run_prediction_only, run_timing

        trace = small_trace("gcc1", 15_000)
        timing = run_timing(trace, PerfectMDP())
        replay = run_prediction_only(trace, PerfectMDP())
        assert (timing.accuracy.prediction_counts
                == replay.accuracy.prediction_counts)


class TestCrossCoreScaling:
    def test_lion_cove_never_slower(self):
        for bench in ("xz", "lbm"):
            trace = small_trace(bench, 15_000)
            golden = Pipeline(Mascot(), config=GOLDEN_COVE).run(trace)
            lion = Pipeline(Mascot(), config=LION_COVE).run(trace)
            assert lion.ipc >= golden.ipc * 0.99


class TestDeterminism:
    def test_full_stack_deterministic(self):
        trace1 = generate_trace("mcf", 10_000)
        trace2 = generate_trace("mcf", 10_000)
        s1 = Pipeline(Mascot()).run(trace1)
        s2 = Pipeline(Mascot()).run(trace2)
        assert s1.cycles == s2.cycles
        assert s1.accuracy.outcome_counts == s2.accuracy.outcome_counts

    @given(st.sampled_from(["exchange2", "bwaves", "deepsjeng"]),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_any_seed_produces_valid_runs(self, benchmark, seed):
        trace = generate_trace(benchmark, 4_000, program_seed=seed,
                               trace_seed=seed + 1)
        stats = Pipeline(Mascot()).run(trace)
        assert stats.instructions == 4_000
        assert stats.cycles > 0
        assert 0 < stats.ipc < GOLDEN_COVE.commit_width


class TestPipelineInvariants:
    """Structural invariants of the timing model on real traces."""

    def test_commit_monotonic_and_issue_after_dispatch(self):
        trace = small_trace("perlbench1", 10_000)
        pipeline = Pipeline(Mascot())
        pipeline.run(trace)
        commits = pipeline._commit_times
        issues = pipeline._issue_times
        assert all(a <= b for a, b in zip(commits, commits[1:]))
        assert all(c > i for i, c in zip(issues, commits))

    def test_commit_width_respected(self):
        trace = small_trace("x264", 10_000)
        pipeline = Pipeline(PerfectMDP())
        pipeline.run(trace)
        from collections import Counter
        per_cycle = Counter(pipeline._commit_times)
        assert max(per_cycle.values()) <= GOLDEN_COVE.commit_width

    def test_value_ready_not_before_issue(self):
        trace = small_trace("gcc1", 10_000)
        pipeline = Pipeline(Mascot())
        pipeline.run(trace)
        for uop in trace:
            if uop.op.is_memory or uop.op.is_branch:
                continue
            assert (pipeline._value_ready[uop.seq]
                    > pipeline._issue_times[uop.seq])

    def test_consumers_never_start_before_producers_finish(self):
        """Arithmetic consumers issue only once every source value is
        ready (stores are excluded: their AGU legitimately runs ahead of
        the data operand)."""
        from repro.trace.uop import OpClass

        trace = small_trace("perlbench2", 10_000)
        pipeline = Pipeline(PerfectMDPSMB())
        pipeline.run(trace)
        for uop in trace:
            if uop.op not in (OpClass.ALU, OpClass.MUL, OpClass.DIV,
                              OpClass.FP):
                continue
            for src in uop.srcs:
                assert (pipeline._issue_times[uop.seq]
                        >= pipeline._value_ready[src]), uop.seq


class TestSmbDisableEquivalence:
    def test_mdp_only_mascot_never_bypasses(self):
        trace = small_trace("lbm", 10_000)
        stats = Pipeline(
            Mascot(MASCOT_DEFAULT.with_(name="mdp", smb_enabled=False))
        ).run(trace)
        assert stats.loads_bypassed == 0


class TestOffsetBypassExtension:
    def test_offset_extension_pays_on_offset_heavy_workload(self):
        """The Sec. IV-E 'shifting field' extension must be verified
        against its own datapath (a regression here once made every offset
        bypass squash)."""
        import dataclasses

        from repro.trace import BypassClass, build_program, get_profile
        from repro.trace.generator import TraceGenerator
        from repro.predictors.configs import MASCOT_DEFAULT

        mix = {BypassClass.DIRECT: 0.4, BypassClass.NO_OFFSET: 0.1,
               BypassClass.OFFSET: 0.4, BypassClass.MDP_ONLY: 0.1}
        profile = dataclasses.replace(get_profile("perlbench2"),
                                      name="offsety", bypass_mix=mix)
        trace = TraceGenerator(build_program(profile, seed=0),
                               seed=1).generate(25_000)
        plain = Pipeline(Mascot()).run(trace)
        extended = Pipeline(
            Mascot(MASCOT_DEFAULT.with_(name="ext", offset_bypass=True))
        ).run(trace)
        assert extended.ipc > plain.ipc
        assert extended.loads_bypassed > plain.loads_bypassed
        # And the extension's bypasses are verified, not squashed.
        assert (extended.memory_squashes
                < plain.memory_squashes + extended.loads_bypassed // 10)
