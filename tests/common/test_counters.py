"""Tests for SaturatingCounter."""

import pytest
from hypothesis import given, strategies as st

from repro.common.counters import SaturatingCounter


class TestConstruction:
    def test_default_starts_at_zero(self):
        assert SaturatingCounter(3).value == 0

    def test_initial_value(self):
        assert SaturatingCounter(3, initial=6).value == 6

    def test_maximum(self):
        assert SaturatingCounter(3).maximum == 7
        assert SaturatingCounter(7).maximum == 127

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)

    def test_out_of_range_initial_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=4)
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=-1)


class TestIncrementDecrement:
    def test_increment(self):
        c = SaturatingCounter(3)
        assert c.increment() == 1

    def test_saturates_high(self):
        c = SaturatingCounter(2, initial=3)
        c.increment()
        assert c.value == 3

    def test_saturates_low(self):
        c = SaturatingCounter(2)
        c.decrement()
        assert c.value == 0

    def test_increment_amount(self):
        c = SaturatingCounter(3)
        c.increment(5)
        assert c.value == 5
        c.increment(100)
        assert c.value == 7

    def test_decrement_amount(self):
        c = SaturatingCounter(3, initial=7)
        c.decrement(3)
        assert c.value == 4
        c.decrement(100)
        assert c.value == 0

    def test_negative_amounts_rejected(self):
        c = SaturatingCounter(3)
        with pytest.raises(ValueError):
            c.increment(-1)
        with pytest.raises(ValueError):
            c.decrement(-1)


class TestStates:
    def test_is_saturated(self):
        c = SaturatingCounter(2, initial=3)
        assert c.is_saturated()
        c.decrement()
        assert not c.is_saturated()

    def test_is_zero(self):
        c = SaturatingCounter(2)
        assert c.is_zero()
        c.increment()
        assert not c.is_zero()

    def test_reset(self):
        c = SaturatingCounter(3, initial=5)
        c.reset()
        assert c.value == 0
        c.reset(7)
        assert c.value == 7
        with pytest.raises(ValueError):
            c.reset(8)


class TestComparisons:
    def test_equality_with_int(self):
        assert SaturatingCounter(3, initial=5) == 5
        assert SaturatingCounter(3, initial=5) != 4

    def test_equality_with_counter(self):
        assert SaturatingCounter(3, initial=5) == SaturatingCounter(4, initial=5)

    def test_ordering(self):
        c = SaturatingCounter(3, initial=4)
        assert c < 5
        assert c <= 4
        assert c > 3
        assert c >= 4

    def test_int_conversion(self):
        assert int(SaturatingCounter(3, initial=6)) == 6

    def test_usable_as_index(self):
        data = list(range(10))
        assert data[SaturatingCounter(3, initial=2)] == 2


@given(st.integers(min_value=1, max_value=8),
       st.lists(st.booleans(), max_size=200))
def test_always_in_range(bits, steps):
    """Property: the counter never leaves [0, 2**bits - 1]."""
    c = SaturatingCounter(bits)
    for up in steps:
        if up:
            c.increment()
        else:
            c.decrement()
        assert 0 <= c.value <= c.maximum


@given(st.integers(min_value=1, max_value=8))
def test_increment_decrement_roundtrip(bits):
    """From any interior state, +1 then -1 is identity."""
    maximum = (1 << bits) - 1
    for start in range(0, maximum):  # exclude the top (saturation absorbs)
        c = SaturatingCounter(bits, initial=start)
        c.increment()
        c.decrement()
        assert c.value == start
