"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import (
    bits_required,
    extract_bits,
    fold_bits,
    mask,
    parity,
    rotate_left,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(3) == 0b111
        assert mask(8) == 0xFF

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=256))
    def test_popcount(self, width):
        assert bin(mask(width)).count("1") == width


class TestBitsRequired:
    def test_zero_needs_one_bit(self):
        assert bits_required(0) == 1

    def test_powers_of_two(self):
        assert bits_required(1) == 1
        assert bits_required(2) == 2
        assert bits_required(255) == 8
        assert bits_required(256) == 9

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bits_required(-5)


class TestFoldBits:
    def test_identity_when_fits(self):
        assert fold_bits(0b1011, 4, 4) == 0b1011

    def test_masks_when_narrower_input(self):
        assert fold_bits(0b1011, 2, 4) == 0b11

    def test_simple_fold(self):
        # 8 bits folded to 4: low nibble XOR high nibble.
        assert fold_bits(0xAB, 8, 4) == (0xA ^ 0xB)

    def test_three_chunk_fold(self):
        value = 0b1100_1010_0110
        expected = 0b1100 ^ 0b1010 ^ 0b0110
        assert fold_bits(value, 12, 4) == expected

    def test_zero_width_output(self):
        assert fold_bits(0xFFFF, 16, 0) == 0

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=16))
    def test_result_fits_width(self, value, in_width, out_width):
        assert 0 <= fold_bits(value, in_width, out_width) < (1 << out_width)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=1, max_value=12))
    def test_fold_is_linear_under_xor(self, a, b, width):
        assert (fold_bits(a, 32, width) ^ fold_bits(b, 32, width)
                == fold_bits(a ^ b, 32, width))


class TestExtractBits:
    def test_low_bits(self):
        assert extract_bits(0b101101, 0, 3) == 0b101

    def test_middle_bits(self):
        assert extract_bits(0b101101, 2, 3) == 0b011

    def test_beyond_value(self):
        assert extract_bits(0b1, 8, 4) == 0


class TestRotateLeft:
    def test_simple(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010

    def test_wraparound(self):
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_full_rotation_is_identity(self):
        assert rotate_left(0b1011, 4, 4) == 0b1011

    def test_zero_width(self):
        assert rotate_left(0b1011, 2, 0) == 0

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1),
           st.integers(min_value=0, max_value=64),
           st.integers(min_value=1, max_value=16))
    def test_inverse(self, value, amount, width):
        value &= mask(width)
        rotated = rotate_left(value, amount, width)
        back = rotate_left(rotated, width - (amount % width), width)
        assert back == value


class TestParity:
    def test_zero(self):
        assert parity(0) == 0

    def test_single_bit(self):
        assert parity(0b1000) == 1

    def test_two_bits(self):
        assert parity(0b1010) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            parity(-1)

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1))
    def test_matches_popcount(self, value):
        assert parity(value) == bin(value).count("1") % 2
