"""Differential property tests for the precomputed fold-value plans.

:class:`repro.common.foldplan.FoldPlan` claims that ``series[slot][k]``
equals the live :class:`~repro.common.foldvec.FoldVector` register value
after ``k`` incremental ``push_bit`` calls; :func:`path_series` makes the
same claim against :class:`~repro.common.history.PathHistory.push`, and
:class:`BranchStream` against the ``GlobalHistory`` push stream itself.
Each test here replays the slow incremental oracle bit-for-bit against the
vectorised closed form, over hypothesis-chosen histories and streams.

All tests run ``derandomize=True``: the explored examples are a pure
function of the test source, so the tier is deterministic run to run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.bitops import fold_bits, mask
from repro.common.foldplan import BranchStream, FoldPlan, path_series
from repro.common.foldvec import FoldVector
from repro.common.history import (
    INDIRECT_TARGET_BITS,
    GlobalHistory,
    PathHistory,
)

MAX_BITS = 64

#: (length, width) fold geometries, TAGE-style: short and long windows,
#: widths both dividing and not dividing the length.
fold_specs_st = st.lists(
    st.tuples(st.integers(min_value=1, max_value=MAX_BITS),
              st.integers(min_value=1, max_value=14)),
    min_size=1, max_size=6, unique=True,
)

bit_st = st.integers(min_value=0, max_value=1)


def _seeded_history(prior_bits, specs):
    """A GlobalHistory with ``specs`` folds attached, then ``prior_bits``
    pushed — so the plan starts from a non-trivial register state."""
    ghist = GlobalHistory(MAX_BITS)
    for length, width in specs:
        ghist.attach_fold(length, width)
    for bit in prior_bits:
        ghist.push_conditional(bool(bit))
    return ghist


class TestFoldPlan:
    @given(specs=fold_specs_st,
           prior=st.lists(bit_st, max_size=MAX_BITS + 8),
           pushed=st.lists(bit_st, max_size=96))
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_series_matches_incremental_push_bit(self, specs, prior, pushed):
        ghist = _seeded_history(prior, specs)
        fv = FoldVector(ghist)
        oracle = FoldVector(ghist)
        plan = FoldPlan(fv, np.asarray(pushed, dtype=np.int64))

        for k in range(len(pushed) + 1):
            for slot in range(len(oracle.values)):
                assert int(plan.series[slot][k]) == oracle.values[slot], (
                    f"slot {slot} diverges after {k} bits"
                )
            if k < len(pushed):
                oracle.push_bit(pushed[k])

    @given(specs=fold_specs_st,
           prior=st.lists(bit_st, max_size=MAX_BITS + 8),
           pushed=st.lists(bit_st, max_size=96))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_finalize_reaches_incremental_end_state(self, specs, prior,
                                                    pushed):
        ghist = _seeded_history(prior, specs)
        fv = FoldVector(ghist)
        oracle = FoldVector(ghist)
        plan = FoldPlan(fv, np.asarray(pushed, dtype=np.int64))
        for bit in pushed:
            oracle.push_bit(bit)

        plan.finalize()
        assert fv.values == oracle.values
        assert fv.bits(MAX_BITS) == oracle.bits(MAX_BITS)

    @given(specs=fold_specs_st,
           prior=st.lists(bit_st, max_size=MAX_BITS + 8),
           pushed=st.lists(bit_st, min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_sync_back_agrees_with_fold_snapshot(self, specs, prior, pushed):
        # End-to-end: plan a stream, finalize, sync back into the
        # GlobalHistory — every register must equal the from-scratch
        # fold_snapshot of the final bit history.
        ghist = _seeded_history(prior, specs)
        fv = FoldVector(ghist)
        FoldPlan(fv, np.asarray(pushed, dtype=np.int64)).finalize()
        fv.sync_back()
        for length, width in specs:
            assert ghist._folds[(length, width)].value == \
                ghist.fold_snapshot(length, width)

    def test_desynced_register_raises_instead_of_skewing(self):
        # The k == 0 column is checked against the live registers; a
        # corrupted register must fail loudly (callers then fall back to
        # the incremental path) rather than produce a silently wrong plan.
        ghist = _seeded_history([1, 0, 1, 1], [(12, 5)])
        fv = FoldVector(ghist)
        fv.values[0] ^= 1
        with pytest.raises(RuntimeError):
            FoldPlan(fv, np.asarray([1, 0], dtype=np.int64))


class TestPathSeries:
    @given(width=st.integers(min_value=1, max_value=20),
           bits_per_branch=st.integers(min_value=1, max_value=4),
           prior_pcs=st.lists(
               st.integers(min_value=0, max_value=2**30), max_size=24),
           event_pcs=st.lists(
               st.integers(min_value=0, max_value=2**30), max_size=48))
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_matches_path_history_push(self, width, bits_per_branch,
                                       prior_pcs, event_pcs):
        path = PathHistory(width=width, bits_per_branch=bits_per_branch)
        for pc in prior_pcs:
            path.push(pc)

        chunks = np.asarray(
            [(pc >> 1) & mask(bits_per_branch) for pc in event_pcs],
            dtype=np.int64,
        )
        series = path_series(path.value, width, bits_per_branch, chunks)

        assert len(series) == len(event_pcs) + 1
        for k, pc in enumerate(event_pcs):
            assert int(series[k]) == path.value
            path.push(pc)
        assert int(series[-1]) == path.value


#: One architectural branch event: (is_indirect, pc, taken-bit-or-target).
events_st = st.lists(
    st.tuples(st.booleans(),
              st.integers(min_value=0, max_value=2**30),
              st.integers(min_value=0, max_value=2**30)),
    max_size=10,
)


def _stream(events):
    kind = np.asarray([1 if ind else 0 for ind, _, _ in events],
                      dtype=np.int64)
    pc = np.asarray([p for _, p, _ in events], dtype=np.int64)
    val = np.asarray([v if ind else (v & 1) for ind, _, v in events],
                     dtype=np.int64)
    return BranchStream(kind, pc, val)


class TestBranchStream:
    @given(events=events_st)
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_mixed_is_the_global_history_push_stream(self, events):
        stream = _stream(events)
        bits, offsets = stream.mixed()

        # Oracle 1: feed the events through a live GlobalHistory and read
        # the bits back (newest first -> reversed to push order).
        ghist = GlobalHistory(max(1, len(bits)))
        expected_offsets = []
        pushed = 0
        for ind, _, value in events:
            expected_offsets.append(pushed)
            if ind:
                ghist.push_indirect(value)
                pushed += INDIRECT_TARGET_BITS
            else:
                ghist.push_conditional(bool(value & 1))
                pushed += 1
        assert offsets.tolist() == expected_offsets
        assert bits.tolist() == ghist.bits(pushed)[::-1]

    @given(events=events_st)
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_cond_and_ind_projections(self, events):
        stream = _stream(events)

        cond_oracle = [v & 1 for ind, _, v in events if not ind]
        assert stream.cond_only().tolist() == cond_oracle

        # ind_only: INDIRECT_TARGET_BITS folded bits per indirect,
        # MSB-first, exactly as GlobalHistory.push_indirect folds them.
        ind_oracle = []
        for ind, _, target in events:
            if not ind:
                continue
            folded = fold_bits(target, max(target.bit_length(), 1),
                               INDIRECT_TARGET_BITS)
            ind_oracle.extend(
                (folded >> i) & 1
                for i in range(INDIRECT_TARGET_BITS - 1, -1, -1))
        assert stream.ind_only().tolist() == ind_oracle

    @given(events=events_st)
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_expansions_are_cached(self, events):
        stream = _stream(events)
        assert stream.mixed() is stream.mixed()
        assert stream.cond_only() is stream.cond_only()
        assert stream.ind_only() is stream.ind_only()
