"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.statistics import (
    Histogram,
    arithmetic_mean,
    f1_score,
    geometric_mean,
    normalise,
    percent_change,
)


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=30))
    def test_bounded_by_min_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=30),
           st.floats(min_value=0.5, max_value=2.0))
    def test_scaling(self, values, factor):
        scaled = geometric_mean([v * factor for v in values])
        assert scaled == pytest.approx(geometric_mean(values) * factor,
                                       rel=1e-9)


class TestArithmeticMean:
    def test_known(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])


class TestNormalise:
    def test_basic(self):
        out = normalise({"a": 2.0, "b": 3.0}, {"a": 1.0, "b": 6.0})
        assert out == {"a": 2.0, "b": 0.5}

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            normalise({"a": 1.0}, {"b": 1.0})

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            normalise({"a": 1.0}, {"a": 0.0})


class TestPercentChange:
    def test_increase(self):
        assert percent_change(1.1, 1.0) == pytest.approx(10.0)

    def test_decrease(self):
        assert percent_change(0.9, 1.0) == pytest.approx(-10.0)

    def test_zero_old_raises(self):
        with pytest.raises(ValueError):
            percent_change(1.0, 0.0)


class TestF1Score:
    def test_perfect(self):
        assert f1_score(10, 0, 0) == pytest.approx(1.0)

    def test_unused_entry_scores_zero(self):
        assert f1_score(0, 0, 0) == 0.0

    def test_all_wrong(self):
        assert f1_score(0, 5, 5) == 0.0

    def test_balanced(self):
        # precision 0.5, recall 0.5 -> F1 0.5.
        assert f1_score(5, 5, 5) == pytest.approx(0.5)

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_in_unit_interval(self, tp, fp, fn):
        assert 0.0 <= f1_score(tp, fp, fn) <= 1.0

    @given(st.integers(min_value=1, max_value=1000),
           st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_matches_harmonic_mean_definition(self, tp, fp, fn):
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        if precision + recall == 0:
            expected = 0.0
        else:
            expected = 2 * precision * recall / (precision + recall)
        assert f1_score(tp, fp, fn) == pytest.approx(expected)


class TestHistogram:
    def test_add_and_count(self):
        h = Histogram(["a", "b"])
        h.add("a")
        h.add("a", 2)
        assert h.count("a") == 3
        assert h.count("b") == 0
        assert h.total() == 3

    def test_unknown_bucket_raises(self):
        h = Histogram(["a"])
        with pytest.raises(KeyError):
            h.add("nope")

    def test_negative_count_raises(self):
        h = Histogram(["a"])
        with pytest.raises(ValueError):
            h.add("a", -1)

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(["a", "a"])

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram([])

    def test_percentages_default_denominator(self):
        h = Histogram(["a", "b"])
        h.add("a", 3)
        h.add("b", 1)
        pct = h.percentages()
        assert pct["a"] == pytest.approx(75.0)
        assert pct["b"] == pytest.approx(25.0)

    def test_percentages_custom_denominator(self):
        h = Histogram(["a"])
        h.add("a", 25)
        assert h.percentages(denominator=100)["a"] == pytest.approx(25.0)

    def test_percentages_empty(self):
        h = Histogram(["a"])
        assert h.percentages() == {"a": 0.0}

    def test_merge(self):
        h1 = Histogram(["a", "b"])
        h2 = Histogram(["a", "b"])
        h1.add("a", 2)
        h2.add("b", 3)
        h1.merge(h2)
        assert h1.counts() == {"a": 2, "b": 3}

    def test_merge_mismatched_raises(self):
        with pytest.raises(ValueError):
            Histogram(["a"]).merge(Histogram(["b"]))
