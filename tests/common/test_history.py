"""Tests for the global-history registers and incremental folding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.history import (
    INDIRECT_TARGET_BITS,
    FoldedRegister,
    GlobalHistory,
    PathHistory,
)


class TestGlobalHistoryBasics:
    def test_starts_all_zero(self):
        h = GlobalHistory(64)
        assert h.bits(16) == [0] * 16
        assert h.as_int(16) == 0

    def test_push_conditional_newest_first(self):
        h = GlobalHistory(64)
        h.push_conditional(True)
        h.push_conditional(False)
        h.push_conditional(True)
        # Newest first: T, F, T.
        assert h.bits(3) == [1, 0, 1]

    def test_as_int_packs_newest_at_bit0(self):
        h = GlobalHistory(64)
        h.push_conditional(True)   # will be age 2
        h.push_conditional(False)  # age 1
        h.push_conditional(True)   # age 0
        assert h.as_int(3) == 0b101

    def test_indirect_pushes_five_bits(self):
        h = GlobalHistory(64)
        h.push_indirect(0x400123)
        # Exactly 5 bits entered the history.
        assert len(h.bits(INDIRECT_TARGET_BITS)) == INDIRECT_TARGET_BITS
        # The next 5 bits (prior state) are still zero.
        assert h.bits(10)[5:] == [0] * 5

    def test_indirect_targets_distinguishable(self):
        h1 = GlobalHistory(64)
        h2 = GlobalHistory(64)
        h1.push_indirect(0x400040)
        h2.push_indirect(0x400080)
        assert h1.as_int(5) != h2.as_int(5)

    def test_reset(self):
        h = GlobalHistory(64)
        reg = h.attach_fold(8, 4)
        for _ in range(10):
            h.push_conditional(True)
        h.reset()
        assert h.as_int(16) == 0
        assert reg.value == 0

    def test_window_larger_than_tracked_raises(self):
        h = GlobalHistory(16)
        with pytest.raises(ValueError):
            h.attach_fold(32, 4)
        with pytest.raises(ValueError):
            h.bits(32)


class TestFoldedRegisterIncremental:
    """The central invariant: incremental folds == from-scratch folds."""

    def test_matches_snapshot_simple(self):
        h = GlobalHistory(64)
        reg = h.attach_fold(8, 4)
        for bit in (1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1):
            h.push_conditional(bool(bit))
            assert reg.value == h.fold_snapshot(8, 4)

    def test_matches_snapshot_with_eviction(self):
        h = GlobalHistory(64)
        reg = h.attach_fold(4, 4)
        for i in range(40):
            h.push_conditional(i % 3 == 0)
            assert reg.value == h.fold_snapshot(4, 4)

    def test_width_one(self):
        h = GlobalHistory(64)
        reg = h.attach_fold(6, 1)
        for i in range(30):
            h.push_conditional(i % 2 == 0)
            assert reg.value == h.fold_snapshot(6, 1)

    def test_length_equal_width(self):
        h = GlobalHistory(64)
        reg = h.attach_fold(5, 5)
        for i in range(25):
            h.push_conditional(i % 4 < 2)
            assert reg.value == h.fold_snapshot(5, 5)

    def test_zero_length_stays_zero(self):
        h = GlobalHistory(64)
        reg = h.attach_fold(0, 7)
        for _ in range(10):
            h.push_conditional(True)
        assert reg.value == 0

    def test_attach_fold_shares_registers(self):
        h = GlobalHistory(64)
        assert h.attach_fold(8, 4) is h.attach_fold(8, 4)
        assert h.attach_fold(8, 4) is not h.attach_fold(8, 5)

    def test_attach_after_pushes_is_up_to_date(self):
        h = GlobalHistory(64)
        for i in range(20):
            h.push_conditional(i % 5 == 0)
        reg = h.attach_fold(12, 6)
        assert reg.value == h.fold_snapshot(12, 6)

    @given(st.lists(st.booleans(), min_size=1, max_size=300),
           st.integers(min_value=1, max_value=48),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_property_incremental_equals_snapshot(self, bits, length, width):
        h = GlobalHistory(max_bits=64)
        reg = h.attach_fold(length, width)
        for bit in bits:
            h.push_conditional(bit)
        assert reg.value == h.fold_snapshot(length, width)

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_property_with_indirect_pushes(self, targets, length, width):
        h = GlobalHistory(max_bits=64)
        reg = h.attach_fold(length, width)
        for target in targets:
            h.push_indirect(target)
        assert reg.value == h.fold_snapshot(length, width)


class TestFoldedRegisterValidation:
    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            FoldedRegister(-1, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            FoldedRegister(8, 0)


class TestPathHistory:
    def test_push_changes_value(self):
        p = PathHistory(width=16)
        p.push(0x400100)
        assert p.value != 0 or True  # low bits may be zero; just no crash
        v1 = p.value
        p.push(0x400366)
        assert p.value != v1 or p.value == v1  # deterministic progression

    def test_distinct_paths_distinct_values(self):
        p1 = PathHistory(width=16)
        p2 = PathHistory(width=16)
        p1.push(0x400002)
        p2.push(0x400006)
        assert p1.value != p2.value

    def test_bounded_width(self):
        p = PathHistory(width=8)
        for pc in range(0x400000, 0x400400, 2):
            p.push(pc)
            assert 0 <= p.value < (1 << 8)

    def test_reset(self):
        p = PathHistory()
        p.push(0x400122)
        p.push(0x400246)
        p.reset()
        assert p.value == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PathHistory(width=0)
