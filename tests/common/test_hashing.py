"""Tests for index/tag hashing."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.common.hashing import mix64, table_index, table_tag


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {mix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    def test_fits_64_bits(self):
        for i in (0, 1, 2**63, 2**64 - 1, 2**70):
            assert 0 <= mix64(i) < 2**64

    def test_avalanche(self):
        """Flipping one input bit should flip many output bits."""
        base = mix64(0xDEADBEEF)
        flipped = mix64(0xDEADBEEF ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert differing >= 16


class TestTableIndex:
    def test_within_range(self):
        for pc in range(0x400000, 0x400100, 4):
            idx = table_index(pc, 7, folded_index=0x35)
            assert 0 <= idx < 128

    def test_depends_on_history(self):
        a = table_index(0x400100, 7, folded_index=0x00)
        b = table_index(0x400100, 7, folded_index=0x55)
        assert a != b

    def test_depends_on_table_number(self):
        a = table_index(0x400100, 7, folded_index=0, table_number=0)
        b = table_index(0x400100, 7, folded_index=0, table_number=3)
        assert a != b

    def test_zero_width(self):
        assert table_index(0x400100, 0, folded_index=0) == 0

    def test_spread_over_sets(self):
        """Sequential PCs should not pile onto a few sets."""
        counts = Counter(
            table_index(0x400000 + 4 * i, 7, folded_index=0)
            for i in range(512)
        )
        # With 512 PCs over 128 sets, no set should be wildly overloaded.
        assert max(counts.values()) <= 32

    @given(st.integers(min_value=0, max_value=2**48),
           st.integers(min_value=1, max_value=14),
           st.integers(min_value=0, max_value=2**14))
    @settings(max_examples=100)
    def test_property_in_range(self, pc, bits, fold):
        assert 0 <= table_index(pc, bits, fold) < (1 << bits)


class TestTableTag:
    def test_within_range(self):
        tag = table_tag(0x400100, 16, folded_tag=0x1234, folded_tag2=0x777)
        assert 0 <= tag < (1 << 16)

    def test_depends_on_pc(self):
        a = table_tag(0x400100, 16, 0, 0)
        b = table_tag(0x400104, 16, 0, 0)
        assert a != b

    def test_depends_on_history_folds(self):
        a = table_tag(0x400100, 16, 0x10, 0x20)
        b = table_tag(0x400100, 16, 0x11, 0x20)
        assert a != b

    def test_zero_width(self):
        assert table_tag(0x400100, 0, 0, 0) == 0

    def test_second_fold_breaks_symmetry(self):
        """Same first fold, different second fold -> different tags."""
        a = table_tag(0x400100, 16, 0x55, 0x00)
        b = table_tag(0x400100, 16, 0x55, 0x40)
        assert a != b
