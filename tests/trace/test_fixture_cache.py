"""The shared trace-fixture memo: identity sharing and the LRU bound.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both delegate to
:mod:`repro.trace.fixture_cache`; these tests pin the two properties the
consolidation exists for — equal parameters yield the *same* list object
(one generation per process), and the memo cannot grow past
``MAX_ENTRIES`` no matter how many parameter combinations a session
sweeps.

The suite-visible cache state is preserved: each test snapshots nothing
but tiny traces and the module is restored by clearing, so test order
stays irrelevant (the other users re-generate on demand).
"""

from __future__ import annotations

import pytest

from repro.trace import fixture_cache
from repro.trace.fixture_cache import MAX_ENTRIES, cache_info, cached_trace


@pytest.fixture()
def fresh_cache():
    # Start empty, leave empty: other fixtures re-populate lazily.
    fixture_cache.clear()
    yield
    fixture_cache.clear()


def test_equal_parameters_share_one_object(fresh_cache):
    first = cached_trace("perlbench1", 64)
    again = cached_trace("perlbench1", 64)
    assert again is first
    info = cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 1


def test_distinct_parameters_generate_separately(fresh_cache):
    base = cached_trace("perlbench1", 64)
    assert cached_trace("lbm", 64) is not base
    assert cached_trace("perlbench1", 96) is not base
    assert cached_trace("perlbench1", 64, trace_seed=7) is not base
    assert cache_info()["misses"] == 4


def test_entries_bounded_with_lru_eviction(fresh_cache):
    keeper = cached_trace("perlbench1", 32)
    for length in range(33, 33 + MAX_ENTRIES):
        cached_trace("perlbench1", length)
        # Re-touch the keeper so it stays most-recently-used throughout.
        assert cached_trace("perlbench1", 32) is keeper
    info = cache_info()
    assert info["entries"] == MAX_ENTRIES
    # The keeper survived every eviction; the eldest untouched entry
    # (length 33) did not.
    assert cached_trace("perlbench1", 32) is keeper
    before = cache_info()["misses"]
    cached_trace("perlbench1", 33)
    assert cache_info()["misses"] == before + 1
