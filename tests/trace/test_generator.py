"""Tests for the dynamic trace generator."""

from collections import Counter

import pytest

from repro.trace import build_program, generate_trace, get_profile
from repro.trace.dependence import classify_overlap
from repro.trace.generator import TraceGenerator
from repro.trace.uop import BypassClass, OpClass


def _generate(benchmark="perlbench1", n=15_000, **kwargs):
    program = build_program(get_profile(benchmark), seed=0)
    return TraceGenerator(program, seed=1, **kwargs).generate(n)


class TestBasics:
    def test_length(self):
        assert len(_generate(n=5000)) == 5000

    def test_sequential_seq_numbers(self):
        trace = _generate(n=3000)
        assert [u.seq for u in trace] == list(range(3000))

    def test_deterministic(self):
        t1 = _generate(n=4000)
        t2 = _generate(n=4000)
        assert all(
            a.pc == b.pc and a.op == b.op and a.address == b.address
            and a.taken == b.taken
            for a, b in zip(t1, t2)
        )

    def test_different_trace_seeds_differ(self):
        program = build_program(get_profile("perlbench1"), seed=0)
        t1 = TraceGenerator(program, seed=1).generate(4000)
        t2 = TraceGenerator(program, seed=2).generate(4000)
        assert any(a.taken != b.taken for a, b in zip(t1, t2)
                   if a.op is OpClass.BRANCH_COND)

    def test_invalid_length(self):
        program = build_program(get_profile("gcc1"), seed=0)
        with pytest.raises(ValueError):
            TraceGenerator(program).generate(0)

    def test_convenience_wrapper(self):
        trace = generate_trace("exchange2", 2000)
        assert len(trace) == 2000


class TestInstructionMix:
    def test_mix_roughly_matches_profile(self):
        profile = get_profile("gcc1")
        trace = _generate("gcc1", n=30_000)
        counts = Counter(u.op for u in trace)
        load_frac = counts[OpClass.LOAD] / len(trace)
        store_frac = counts[OpClass.STORE] / len(trace)
        assert abs(load_frac - profile.frac_load) < 0.10
        assert abs(store_frac - profile.frac_store) < 0.08

    def test_contains_branches_and_fp(self):
        trace = _generate("bwaves", n=20_000)
        ops = {u.op for u in trace}
        assert OpClass.BRANCH_COND in ops
        assert OpClass.FP in ops


class TestDataflow:
    def test_sources_reference_earlier_uops(self):
        trace = _generate(n=20_000)
        for uop in trace:
            for src in uop.srcs:
                assert 0 <= src < uop.seq

    def test_sources_reference_value_producers(self):
        trace = _generate(n=20_000)
        producers = {}
        for uop in trace:
            for src in uop.srcs:
                producer = producers.get(src)
                assert producer is not None, "src must be a producing op"
            if uop.op in (OpClass.ALU, OpClass.MUL, OpClass.DIV, OpClass.FP,
                          OpClass.LOAD):
                producers[uop.seq] = uop

    def test_loads_feed_consumers(self):
        trace = _generate("perlbench2", n=20_000)
        load_seqs = {u.seq for u in trace if u.is_load}
        consumers = sum(
            1 for u in trace
            if not u.is_load and any(s in load_seqs for s in u.srcs)
        )
        assert consumers > 100


class TestDependenceAnnotations:
    def test_annotations_consistent_with_addresses(self):
        """Every annotated dependence must be a real byte overlap with the
        annotated store, and the bypass class must match the geometry."""
        trace = _generate(n=25_000)
        stores = {u.seq: u for u in trace if u.is_store}
        for uop in trace:
            if not (uop.is_load and uop.has_dependence):
                continue
            store = stores[uop.dep_store_seq]
            cls = classify_overlap(store.address, store.size,
                                   uop.address, uop.size)
            assert cls is uop.bypass

    def test_annotated_store_is_youngest_overlap(self):
        trace = _generate(n=25_000)
        recent_stores = []
        for uop in trace:
            if uop.is_store:
                recent_stores.append(uop)
                continue
            if not (uop.is_load and uop.has_dependence):
                continue
            # No younger store (after the annotated one) may overlap.
            for store in reversed(recent_stores):
                if store.seq <= uop.dep_store_seq:
                    break
                overlap = classify_overlap(store.address, store.size,
                                           uop.address, uop.size)
                assert overlap is BypassClass.NONE

    def test_distance_counts_stores(self):
        trace = _generate(n=25_000)
        store_count = 0
        store_number = {}
        for uop in trace:
            if uop.is_store:
                store_number[uop.seq] = store_count
                store_count += 1
            elif uop.is_load and uop.has_dependence:
                expected = store_count - store_number[uop.dep_store_seq]
                assert uop.store_distance == expected

    def test_dependences_within_windows(self):
        trace = _generate(n=25_000, store_window=114, instr_window=512)
        for uop in trace:
            if uop.is_load and uop.has_dependence:
                assert uop.seq - uop.dep_store_seq <= 512
                assert uop.store_distance <= 114

    def test_smaller_instr_window_reduces_dependences(self):
        wide = _generate(n=20_000, instr_window=512)
        narrow = _generate(n=20_000, instr_window=64)
        wide_deps = sum(u.has_dependence for u in wide if u.is_load)
        narrow_deps = sum(u.has_dependence for u in narrow if u.is_load)
        assert narrow_deps < wide_deps


class TestBenchmarkCharacter:
    def test_dep_fraction_ordering(self):
        """Fig. 2's qualitative ordering must hold in generated traces."""
        def dep_frac(name):
            trace = _generate(name, n=20_000)
            loads = [u for u in trace if u.is_load]
            return sum(u.has_dependence for u in loads) / len(loads)

        assert dep_frac("perlbench2") > 0.2
        assert dep_frac("lbm") > 0.25
        assert dep_frac("bwaves") < 0.10
        assert dep_frac("exchange2") < 0.10

    def test_direct_bypass_dominates(self):
        """Fig. 2: the same-size aligned case is the overwhelming fraction."""
        trace = _generate("perlbench1", n=30_000)
        classes = Counter(
            u.bypass for u in trace if u.is_load and u.has_dependence
        )
        assert classes[BypassClass.DIRECT] > classes[BypassClass.OFFSET]
        assert classes[BypassClass.DIRECT] > classes[BypassClass.MDP_ONLY]

    def test_conditional_dependences_exist(self):
        """Some static loads must alternate dependent/non-dependent."""
        trace = _generate("perlbench1", n=30_000)
        by_pc = {}
        for u in trace:
            if u.is_load:
                by_pc.setdefault(u.pc, []).append(u.has_dependence)
        alternating = [
            pc for pc, flags in by_pc.items()
            if len(flags) > 20 and 0.2 < sum(flags) / len(flags) < 0.95
        ]
        assert alternating, "expected branch-conditional dependencies"
