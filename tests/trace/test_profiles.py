"""Tests for workload profiles."""

import dataclasses

import pytest

from repro.trace.profiles import SPEC_SUITE, WorkloadProfile, get_profile, suite_names
from repro.trace.uop import BypassClass


class TestSuite:
    def test_suite_nonempty_and_unique(self):
        names = suite_names()
        assert len(names) >= 20
        assert len(set(names)) == len(names)

    def test_get_profile_roundtrip(self):
        for name in suite_names():
            assert get_profile(name).name == name

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("spec2038")

    def test_all_profiles_validate(self):
        for profile in SPEC_SUITE:
            total = sum(profile.bypass_mix.values())
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_paper_calibration_anchors(self):
        """Fig. 2 anchors: perlbench/lbm dependence-rich, bwaves/wrf sparse."""
        assert get_profile("perlbench2").dep_fraction >= 0.4
        assert get_profile("lbm").dep_fraction >= 0.35
        assert get_profile("bwaves").dep_fraction <= 0.08
        assert get_profile("wrf").dep_fraction <= 0.08
        assert get_profile("exchange2").dep_fraction <= 0.10

    def test_perlbench_is_load_value_sensitive(self):
        """Sec. VI-A: perlbench is especially sensitive to early values."""
        assert (get_profile("perlbench2").load_consumer_fraction
                > get_profile("lbm").load_consumer_fraction)

    def test_mcf_has_noisy_context(self):
        assert (get_profile("mcf").branch_pattern_fraction
                < get_profile("x264").branch_pattern_fraction)


class TestValidation:
    def _base(self, **overrides):
        fields = dict(name="test")
        fields.update(overrides)
        return WorkloadProfile(**fields)

    def test_valid_default(self):
        profile = self._base()
        assert profile.name == "test"

    def test_bypass_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            self._base(bypass_mix={BypassClass.DIRECT: 0.5})

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            self._base(frac_load=1.5)
        with pytest.raises(ValueError):
            self._base(dep_fraction=-0.1)

    def test_mix_exceeding_one_rejected(self):
        with pytest.raises(ValueError):
            self._base(frac_load=0.5, frac_store=0.3, frac_branch=0.2,
                       frac_fp=0.2)

    def test_positive_structure(self):
        with pytest.raises(ValueError):
            self._base(footprint=0)
        with pytest.raises(ValueError):
            self._base(num_segments=0)

    def test_frozen(self):
        profile = self._base()
        with pytest.raises(dataclasses.FrozenInstanceError):
            profile.frac_load = 0.5
