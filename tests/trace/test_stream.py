"""Tests for trace serialization."""

import io

import pytest

from repro.trace.stream import TraceFormatError, read_trace, write_trace
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import small_trace


def roundtrip(trace, benchmark="test"):
    buffer = io.StringIO()
    write_trace(trace, buffer, benchmark=benchmark)
    buffer.seek(0)
    return read_trace(buffer)


class TestRoundtrip:
    def test_full_trace_roundtrips(self):
        trace = small_trace("perlbench1", 5_000)
        loaded = roundtrip(trace)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.seq == b.seq
            assert a.pc == b.pc
            assert a.op == b.op
            assert a.srcs == b.srcs
            assert a.addr_src == b.addr_src
            assert a.taken == b.taken
            assert a.target == b.target
            assert a.address == b.address
            assert a.size == b.size
            assert a.store_distance == b.store_distance
            assert a.dep_store_seq == b.dep_store_seq
            assert a.bypass == b.bypass

    def test_file_roundtrip(self, tmp_path):
        trace = small_trace("exchange2", 2_000)
        path = tmp_path / "trace.txt"
        write_trace(trace, path, benchmark="exchange2")
        loaded = read_trace(path)
        assert len(loaded) == 2_000

    def test_replay_equivalence(self):
        """A reloaded trace must drive a predictor identically."""
        from repro.experiments.runner import run_prediction_only
        from repro.predictors.mascot import Mascot

        trace = small_trace("perlbench1", 8_000)
        original = run_prediction_only(trace, Mascot())
        reloaded = run_prediction_only(roundtrip(trace), Mascot())
        assert (original.accuracy.outcome_counts
                == reloaded.accuracy.outcome_counts)


class TestValidation:
    def test_bad_header(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("not a trace\n"))

    def test_wrong_version(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("#repro-trace v99 x 0\n"))

    def test_truncated_file(self):
        trace = small_trace("exchange2", 100)
        buffer = io.StringIO()
        write_trace(trace, buffer)
        text = buffer.getvalue()
        truncated = "\n".join(text.splitlines()[:50])
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO(truncated))

    def test_field_count_checked(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO(
                "#repro-trace v1 x 1\n0 alu 400000\n"
            ))

    def test_sequence_gap_detected(self):
        uop = MicroOp(5, 0x400000, OpClass.ALU)  # seq 5, not 0
        buffer = io.StringIO()
        write_trace([uop], buffer)
        buffer.seek(0)
        with pytest.raises(TraceFormatError):
            read_trace(buffer)

    def test_garbage_field(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO(
                "#repro-trace v1 x 1\n"
                "0 alu zz - - 0 0 0 0 0 - none\n"
            ))


class TestSpecialCases:
    def test_dependent_load(self):
        store = MicroOp(0, 0x400000, OpClass.STORE, address=0x1000, size=8)
        load = MicroOp(1, 0x400004, OpClass.LOAD, address=0x1000, size=8,
                       store_distance=1, dep_store_seq=0,
                       bypass=BypassClass.DIRECT, addr_src=0)
        loaded = roundtrip([store, load])
        assert loaded[1].has_dependence
        assert loaded[1].bypass is BypassClass.DIRECT
        assert loaded[1].addr_src == 0

    def test_empty_trace(self):
        assert roundtrip([]) == []
