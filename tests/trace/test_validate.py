"""Tests for the trace validator."""

import pytest

from repro.trace.uop import BypassClass, MicroOp, OpClass
from repro.trace.validate import (
    TraceValidationError,
    validate_trace,
)

from tests.conftest import small_trace


def alu(seq, srcs=()):
    return MicroOp(seq, 0x400000 + 4 * seq, OpClass.ALU, srcs=tuple(srcs))


def store(seq, addr=0x1000, size=8):
    return MicroOp(seq, 0x400800, OpClass.STORE, address=addr, size=size)


def dep_load(seq, dep, distance=1, addr=0x1000, size=8,
             bypass=BypassClass.DIRECT):
    return MicroOp(seq, 0x400900, OpClass.LOAD, address=addr, size=size,
                   store_distance=distance, dep_store_seq=dep, bypass=bypass)


class TestValidTraces:
    def test_generated_traces_validate(self):
        for bench in ("perlbench1", "lbm", "exchange2"):
            trace = small_trace(bench, 10_000)
            report = validate_trace(trace)
            assert report.ok
            assert report.uops == 10_000
            assert report.loads > 0

    def test_minimal_pair(self):
        trace = [store(0), dep_load(1, dep=0)]
        assert validate_trace(trace).ok

    def test_report_counters(self):
        trace = [alu(0), store(1), dep_load(2, dep=1)]
        report = validate_trace(trace)
        assert report.stores == 1
        assert report.loads == 1
        assert report.dependent_loads == 1


class TestBrokenTraces:
    def _check(self, trace, fragment):
        with pytest.raises(TraceValidationError) as err:
            validate_trace(trace)
        assert fragment in str(err.value)
        report = validate_trace(trace, strict=False)
        assert not report.ok

    def test_sequence_gap(self):
        self._check([alu(0), alu(2)], "sequence number")

    def test_dangling_source(self):
        self._check([alu(0, srcs=(5,))], "not an earlier uop")

    def test_source_not_producer(self):
        # A store produces no value; consuming it is invalid.
        self._check([store(0), alu(1, srcs=(0,))], "not a value producer")

    def test_bad_addr_src(self):
        trace = [store(0), dep_load(1, dep=0)]
        trace[1] = MicroOp(1, 0x400900, OpClass.LOAD, address=0x1000,
                           size=8, store_distance=1, dep_store_seq=0,
                           bypass=BypassClass.DIRECT, addr_src=40)
        self._check(trace, "addr_src")

    def test_dep_on_non_store(self):
        self._check([alu(0), dep_load(1, dep=0)], "is not a store")

    def test_wrong_bypass_class(self):
        # Same address and size is DIRECT, not OFFSET.
        self._check([store(0), dep_load(1, dep=0,
                                        bypass=BypassClass.OFFSET)],
                    "does not match geometry")

    def test_wrong_distance(self):
        trace = [store(0), store(1, addr=0x2000), dep_load(2, dep=0,
                                                           distance=1)]
        self._check(trace, "store_distance")

    def test_not_youngest_overlap(self):
        # Two stores to the same address; the load names the older one.
        trace = [store(0), store(1), dep_load(2, dep=0, distance=2)]
        self._check(trace, "younger overlapping store")

    def test_false_independence(self):
        trace = [store(0),
                 MicroOp(1, 0x400900, OpClass.LOAD, address=0x1000, size=8)]
        self._check(trace, "annotated independent")

    def test_window_violation(self):
        trace = [store(0)]
        trace += [alu(i) for i in range(1, 600)]
        trace.append(dep_load(600, dep=0))
        self._check(trace, "instruction window")

    def test_max_errors_bounds_report(self):
        trace = [alu(0, srcs=())]
        trace += [alu(i, srcs=(10_000,)) for i in range(1, 100)]
        report = validate_trace(trace, strict=False, max_errors=5)
        assert len(report.errors) == 5
