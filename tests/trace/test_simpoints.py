"""Tests for SimPoint-style interval selection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.simpoints import (
    Interval,
    estimate_weighted,
    basic_block_vectors,
    kmeans_labels,
    rebase_interval,
    select_simpoints,
    split_intervals,
)
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import small_trace


def phase_trace(n_per_phase=2000, phases=(0x400000, 0x500000), repeats=2):
    """A synthetic trace alternating between distinct code regions."""
    trace = []
    seq = 0
    for _ in range(repeats):
        for base in phases:
            for i in range(n_per_phase):
                trace.append(MicroOp(seq, base + 4 * (i % 50), OpClass.ALU))
                seq += 1
    return trace


class TestSplitIntervals:
    def test_exact_split(self):
        trace = phase_trace(1000, repeats=1)
        intervals = split_intervals(trace, 500)
        assert len(intervals) == 4
        assert intervals[0].start == 0
        assert intervals[-1].end == 2000

    def test_tail_dropped(self):
        trace = phase_trace(1000, repeats=1)  # 2000 uops
        intervals = split_intervals(trace, 1500)
        assert len(intervals) == 1

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            split_intervals([], 0)


class TestBasicBlockVectors:
    def test_rows_normalised(self):
        trace = phase_trace(500, repeats=1)
        intervals = split_intervals(trace, 250)
        vectors = basic_block_vectors(trace, intervals)
        assert vectors.shape[0] == len(intervals)
        for row in vectors:
            assert abs(row.sum() - 1.0) < 1e-9

    def test_phases_have_distinct_fingerprints(self):
        trace = phase_trace(1000, repeats=1)
        intervals = split_intervals(trace, 1000)
        vectors = basic_block_vectors(trace, intervals)
        # Phase A interval and phase B interval share no PCs.
        assert float((vectors[0] * vectors[1]).sum()) == 0.0

    def test_no_intervals_raises(self):
        with pytest.raises(ValueError):
            basic_block_vectors([], [])


class TestSelectSimpoints:
    def test_weights_sum_to_one(self):
        trace = phase_trace(1000, repeats=2)
        simpoints = select_simpoints(trace, 1000, max_k=3)
        assert sum(s.weight for s in simpoints) == pytest.approx(1.0)

    def test_identifies_two_phases(self):
        trace = phase_trace(1000, repeats=3)
        simpoints = select_simpoints(trace, 1000, max_k=2)
        assert len(simpoints) == 2
        # Each representative comes from a different phase region.
        pcs = set()
        for s in simpoints:
            pcs.add(trace[s.interval.start].pc & 0xF00000)
        assert len(pcs) == 2

    def test_k_capped_by_interval_count(self):
        trace = phase_trace(500, repeats=1)  # 2 intervals of 500
        simpoints = select_simpoints(trace, 1000, max_k=8)
        assert len(simpoints) <= 1

    def test_too_short_trace_raises(self):
        with pytest.raises(ValueError):
            select_simpoints(phase_trace(10, repeats=1), 10_000)

    def test_deterministic(self):
        trace = small_trace("gcc1", 12_000)
        s1 = select_simpoints(trace, 2000, max_k=3, seed=7)
        s2 = select_simpoints(trace, 2000, max_k=3, seed=7)
        assert [s.interval.index for s in s1] == [
            s.interval.index for s in s2
        ]


class TestKmeansEmptyClusters:
    """Regression: a cluster that empties mid-Lloyd used to keep its stale
    centroid, and ``select_simpoints`` silently returned fewer than k
    SimPoints.  Empty clusters are now re-seeded from the farthest point."""

    def duplicate_heavy_vectors(self):
        import numpy as np

        # 3 distinct rows, but one of them overwhelms the data: a
        # k-means++ seeding that lands two centroids near the heavy mode
        # empties one of them in the first Lloyd assignment.
        rows = [[0.0, 0.0]] * 60 + [[10.0, 0.0]] * 2 + [[0.0, 10.0]] * 2
        return np.asarray(rows)

    def test_all_k_clusters_survive(self):
        import numpy as np

        vectors = self.duplicate_heavy_vectors()
        for seed in range(20):
            labels = kmeans_labels(vectors, 3, seed=seed)
            assert set(np.unique(labels)) == {0, 1, 2}, f"seed {seed}"

    def test_reseed_is_deterministic(self):
        import numpy as np

        vectors = self.duplicate_heavy_vectors()
        a = kmeans_labels(vectors, 3, seed=5)
        b = kmeans_labels(vectors, 3, seed=5)
        assert np.array_equal(a, b)

    def test_degenerate_duplicates_do_not_loop(self):
        import numpy as np

        # Fewer distinct rows than k: repair must give up gracefully
        # rather than spin or crash; labels stay valid.
        vectors = np.zeros((8, 3))
        labels = kmeans_labels(vectors, 4, seed=0)
        assert labels.shape == (8,)
        assert set(np.unique(labels)) <= {0, 1, 2, 3}

    def test_select_simpoints_returns_full_k(self):
        # Trace with 3 phases but one dominating phase; before the fix a
        # mid-iteration empty cluster could drop a representative.
        trace = []
        seq = 0
        spec = [(0x400000, 12), (0x500000, 2), (0x600000, 2)]
        for base, blocks in spec:
            for _ in range(blocks):
                for i in range(500):
                    trace.append(
                        MicroOp(seq, base + 4 * (i % 25), OpClass.ALU)
                    )
                    seq += 1
        simpoints = select_simpoints(trace, 500, max_k=3, seed=0)
        assert len(simpoints) == 3
        assert sum(s.weight for s in simpoints) == pytest.approx(1.0)


class TestRebaseInterval:
    def test_renumbers_from_zero(self):
        trace = small_trace("perlbench1", 8_000)
        piece = rebase_interval(trace, Interval(0, 2000, 4000))
        assert [u.seq for u in piece] == list(range(2000))

    def test_dataflow_stays_internal(self):
        trace = small_trace("perlbench1", 8_000)
        piece = rebase_interval(trace, Interval(0, 2000, 4000))
        for uop in piece:
            for src in uop.srcs:
                assert 0 <= src < uop.seq
            if uop.addr_src is not None:
                assert 0 <= uop.addr_src < uop.seq

    def test_out_of_slice_dependences_dropped(self):
        trace = small_trace("perlbench1", 8_000)
        piece = rebase_interval(trace, Interval(0, 2000, 4000))
        for uop in piece:
            if uop.is_load and uop.has_dependence:
                assert 0 <= uop.dep_store_seq < uop.seq
            if uop.is_load and not uop.has_dependence:
                assert uop.bypass is BypassClass.NONE

    def test_rebase_runs_through_pipeline(self):
        from repro.core import Pipeline
        from repro.predictors import Mascot

        trace = small_trace("perlbench1", 8_000)
        piece = rebase_interval(trace, Interval(0, 3000, 6000))
        stats = Pipeline(Mascot()).run(piece)
        assert stats.instructions == 3000

    @given(offset=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_offset_is_a_pure_shift(self, offset):
        """A non-zero offset must shift every sequence reference by the
        same amount and change nothing else — rebased slices are stitched
        after ``offset`` other micro-ops (sampled warmup prefixes)."""
        trace = small_trace("perlbench1", 8_000)
        base = rebase_interval(trace, Interval(0, 2000, 4000))
        shifted = rebase_interval(trace, Interval(0, 2000, 4000),
                                  offset=offset)
        assert len(shifted) == len(base)
        for a, b in zip(base, shifted):
            assert b.seq == a.seq + offset
            assert b.srcs == tuple(s + offset for s in a.srcs)
            assert b.addr_src == (None if a.addr_src is None
                                  else a.addr_src + offset)
            if a.dep_store_seq is None or a.dep_store_seq < 0:
                assert b.dep_store_seq == a.dep_store_seq
            else:
                assert b.dep_store_seq == a.dep_store_seq + offset
            assert (b.pc, b.op, b.address, b.bypass) \
                == (a.pc, a.op, a.address, a.bypass)

    def test_zero_offset_is_the_default(self):
        trace = small_trace("perlbench1", 8_000)
        assert rebase_interval(trace, Interval(0, 2000, 4000)) \
            == rebase_interval(trace, Interval(0, 2000, 4000), offset=0)

    def test_negative_offset_rejected(self):
        trace = small_trace("perlbench1", 8_000)
        with pytest.raises(ValueError):
            rebase_interval(trace, Interval(0, 2000, 4000), offset=-1)


class TestEstimateWeighted:
    def test_constant_metric(self):
        trace = phase_trace(500, repeats=2)
        simpoints = select_simpoints(trace, 500, max_k=2)
        assert estimate_weighted(
            trace, simpoints, lambda t, m: 42.0
        ) == pytest.approx(42.0)

    def test_ipc_estimate_close_to_full_run(self):
        """The SimPoint estimate approximates the full-trace IPC."""
        from repro.core import Pipeline
        from repro.predictors import PerfectMDP

        trace = small_trace("xz", 24_000)
        full = Pipeline(PerfectMDP()).run(trace).ipc
        simpoints = select_simpoints(trace, 4000, max_k=3)

        def ipc(piece, measure_from):
            return Pipeline(PerfectMDP()).run(
                piece, measure_from=measure_from
            ).ipc

        estimate = estimate_weighted(trace, simpoints, ipc)
        assert estimate == pytest.approx(full, rel=0.2)

    def test_empty_simpoints_raise(self):
        with pytest.raises(ValueError):
            estimate_weighted([], [], lambda t, m: 0.0)

    def test_negative_warmup_rejected(self):
        trace = phase_trace(500, repeats=2)
        simpoints = select_simpoints(trace, 500, max_k=2)
        with pytest.raises(ValueError):
            estimate_weighted(trace, simpoints, lambda t, m: 0.0,
                              warmup_intervals=-1)

    def test_warmup_improves_ipc_estimate(self):
        from repro.core import Pipeline
        from repro.predictors import PerfectMDP

        trace = small_trace("xz", 24_000)
        full = Pipeline(PerfectMDP()).run(trace).ipc
        simpoints = select_simpoints(trace, 4000, max_k=3)

        def ipc(piece, measure_from):
            return Pipeline(PerfectMDP()).run(
                piece, measure_from=measure_from
            ).ipc

        cold = estimate_weighted(trace, simpoints, ipc, warmup_intervals=0)
        warm = estimate_weighted(trace, simpoints, ipc, warmup_intervals=1)
        assert abs(warm - full) <= abs(cold - full)
