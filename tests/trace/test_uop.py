"""Tests for the micro-op model."""

import pytest

from repro.trace.uop import MAX_STORE_DISTANCE, BypassClass, MicroOp, OpClass


class TestOpClass:
    def test_branch_flags(self):
        assert OpClass.BRANCH_COND.is_branch
        assert OpClass.BRANCH_INDIRECT.is_branch
        assert not OpClass.ALU.is_branch

    def test_memory_flags(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.FP.is_memory


class TestBypassClass:
    def test_dependence_flags(self):
        assert BypassClass.DIRECT.is_dependence
        assert BypassClass.MDP_ONLY.is_dependence
        assert not BypassClass.NONE.is_dependence

    def test_bypassable_flags(self):
        assert BypassClass.DIRECT.is_bypassable
        assert BypassClass.NO_OFFSET.is_bypassable
        assert BypassClass.OFFSET.is_bypassable
        assert not BypassClass.MDP_ONLY.is_bypassable
        assert not BypassClass.NONE.is_bypassable


class TestMicroOpValidation:
    def test_plain_alu(self):
        uop = MicroOp(0, 0x400000, OpClass.ALU, srcs=(0,))
        assert not uop.is_load and not uop.is_store and not uop.is_branch

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            MicroOp(-1, 0x400000, OpClass.ALU)

    def test_memory_needs_size(self):
        with pytest.raises(ValueError):
            MicroOp(0, 0x400000, OpClass.LOAD, address=0x1000, size=0)

    def test_load_dependence_consistency(self):
        # distance > 0 but bypass NONE is inconsistent.
        with pytest.raises(ValueError):
            MicroOp(0, 0x400000, OpClass.LOAD, address=0x1000, size=8,
                    store_distance=3, bypass=BypassClass.NONE)
        # bypass set but distance 0 is inconsistent.
        with pytest.raises(ValueError):
            MicroOp(0, 0x400000, OpClass.LOAD, address=0x1000, size=8,
                    store_distance=0, bypass=BypassClass.DIRECT)

    def test_dependence_needs_store_seq(self):
        with pytest.raises(ValueError):
            MicroOp(5, 0x400000, OpClass.LOAD, address=0x1000, size=8,
                    store_distance=1, bypass=BypassClass.DIRECT)

    def test_valid_dependent_load(self):
        uop = MicroOp(5, 0x400000, OpClass.LOAD, address=0x1000, size=8,
                      store_distance=1, dep_store_seq=3,
                      bypass=BypassClass.DIRECT)
        assert uop.has_dependence
        assert uop.is_load

    def test_independent_load(self):
        uop = MicroOp(5, 0x400000, OpClass.LOAD, address=0x1000, size=8)
        assert not uop.has_dependence

    def test_store_is_not_dependent(self):
        uop = MicroOp(0, 0x400000, OpClass.STORE, address=0x1000, size=8)
        assert uop.is_store
        assert not uop.has_dependence

    def test_dep_store_seq_on_nondependent_load_rejected(self):
        # A stray store pointer on a load whose bypass class says "no
        # dependence" would let an oracle-ish annotation leak through.
        with pytest.raises(ValueError, match="non-dependence"):
            MicroOp(5, 0x400000, OpClass.LOAD, address=0x1000, size=8,
                    store_distance=0, dep_store_seq=3,
                    bypass=BypassClass.NONE)

    def test_dep_store_seq_on_non_load_rejected(self):
        for op, size in ((OpClass.STORE, 8), (OpClass.ALU, 0)):
            with pytest.raises(ValueError, match="non-load"):
                MicroOp(5, 0x400000, op, address=0x1000, size=size,
                        dep_store_seq=3)

    def test_store_distance_on_non_load_rejected(self):
        with pytest.raises(ValueError, match="non-load"):
            MicroOp(5, 0x400000, OpClass.STORE, address=0x1000, size=8,
                    store_distance=2)

    def test_bypass_class_on_non_load_rejected(self):
        with pytest.raises(ValueError, match="non-load"):
            MicroOp(5, 0x400000, OpClass.ALU, bypass=BypassClass.DIRECT)


def test_max_store_distance_matches_field_width():
    """The 7-bit distance field (Fig. 6) caps at 127."""
    assert MAX_STORE_DISTANCE == (1 << 7) - 1
