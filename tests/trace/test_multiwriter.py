"""Tests for multi-writer pairs and address-source dataflow."""

from collections import Counter

from repro.trace import build_program, get_profile
from repro.trace.generator import TraceGenerator
from repro.trace.program import StaticKind
from repro.trace.uop import OpClass


def _program(benchmark="gcc4", seed=0):
    return build_program(get_profile(benchmark), seed=seed)


def _multiwriter_pairs(program):
    writers = Counter()
    for segment in program.segments:
        for inst in segment.body:
            if inst.kind is StaticKind.STORE_PAIR:
                writers[inst.pair.pair_id] += 1
    return {pid for pid, count in writers.items() if count == 2}


class TestMultiWriterStructure:
    def test_multiwriter_pairs_exist(self):
        program = _program()
        assert _multiwriter_pairs(program)

    def test_writers_have_distinct_strides(self):
        program = _program()
        multi = _multiwriter_pairs(program)
        strides = {}
        for segment in program.segments:
            for inst in segment.body:
                if (inst.kind is StaticKind.STORE_PAIR
                        and inst.pair.pair_id in multi):
                    strides.setdefault(inst.pair.pair_id, set()).add(
                        inst.writer_stride
                    )
        for pid, stride_set in strides.items():
            assert stride_set == {1, 5}, f"pair {pid}"

    def test_parity_aliasing(self):
        """Stride-1 and stride-5 walks over rotation 8 coincide exactly on
        even iterations."""
        program = _program()
        multi = _multiwriter_pairs(program)
        pair = next(p for p in program.pairs if p.pair_id in multi)
        for iteration in range(16):
            same = (pair.store_address(iteration, 1)
                    == pair.store_address(iteration, 5))
            assert same == (iteration % 2 == 0)


class TestMultiWriterDynamics:
    def test_dependence_alternates_with_parity(self):
        """On even iterations the load depends on the later (stride-5)
        writer; on odd iterations on the stride-1 writer."""
        program = _program()
        multi = _multiwriter_pairs(program)
        load_pcs = {
            inst.pc: inst.pair.pair_id
            for segment in program.segments for inst in segment.body
            if inst.kind is StaticKind.LOAD_PAIR
            and inst.pair.pair_id in multi
        }
        writer_pcs = {}
        for segment in program.segments:
            for inst in segment.body:
                if (inst.kind is StaticKind.STORE_PAIR
                        and inst.pair.pair_id in multi):
                    writer_pcs[(inst.pair.pair_id, inst.writer_stride)] = inst.pc

        trace = TraceGenerator(program, seed=1).generate(40_000)
        store_pc_by_seq = {u.seq: u.pc for u in trace if u.is_store}
        dep_writer_strides = Counter()
        for uop in trace:
            if uop.is_load and uop.pc in load_pcs and uop.has_dependence:
                pid = load_pcs[uop.pc]
                producer_pc = store_pc_by_seq[uop.dep_store_seq]
                for stride in (1, 5):
                    if writer_pcs.get((pid, stride)) == producer_pc:
                        dep_writer_strides[stride] += 1
        # Both writers must act as producers across the run.
        assert dep_writer_strides[1] > 0
        assert dep_writer_strides[5] > 0


class TestAddressSources:
    def test_addr_src_references_earlier_producer(self):
        program = _program()
        trace = TraceGenerator(program, seed=1).generate(25_000)
        producers = set()
        for uop in trace:
            if uop.addr_src is not None:
                assert uop.addr_src in producers, uop.seq
            if uop.op in (OpClass.ALU, OpClass.MUL, OpClass.DIV,
                          OpClass.FP, OpClass.LOAD):
                producers.add(uop.seq)

    def test_some_stores_have_late_addresses(self):
        """store_addr_chain_fraction must yield address-dependent stores."""
        program = _program()
        trace = TraceGenerator(program, seed=1).generate(25_000)
        stores = [u for u in trace if u.is_store]
        chained = sum(1 for u in stores if u.addr_src is not None)
        assert 0.1 < chained / len(stores) < 0.9

    def test_pair_loads_have_address_dependencies(self):
        program = _program("perlbench2")
        trace = TraceGenerator(program, seed=1).generate(25_000)
        pair_loads = [u for u in trace if u.is_load and u.has_dependence]
        with_src = sum(1 for u in pair_loads if u.addr_src is not None)
        assert with_src > len(pair_loads) * 0.3
