"""Tests for overlap classification and the dependence tracker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.dependence import DependenceTracker, classify_overlap
from repro.trace.uop import BypassClass


class TestClassifyOverlap:
    """Fig. 1's taxonomy, case by case."""

    def test_direct_bypass(self):
        assert classify_overlap(0x100, 8, 0x100, 8) is BypassClass.DIRECT

    def test_no_offset_truncation(self):
        assert classify_overlap(0x100, 8, 0x100, 4) is BypassClass.NO_OFFSET

    def test_offset_contained(self):
        assert classify_overlap(0x100, 8, 0x104, 4) is BypassClass.OFFSET

    def test_partial_overlap_is_mdp_only(self):
        # Load extends past the end of the store.
        assert classify_overlap(0x100, 8, 0x106, 4) is BypassClass.MDP_ONLY

    def test_load_starts_before_store(self):
        assert classify_overlap(0x100, 8, 0x0FC, 8) is BypassClass.MDP_ONLY

    def test_load_larger_than_store_same_address(self):
        assert classify_overlap(0x100, 4, 0x100, 8) is BypassClass.MDP_ONLY

    def test_adjacent_no_overlap(self):
        assert classify_overlap(0x100, 8, 0x108, 8) is BypassClass.NONE
        assert classify_overlap(0x108, 8, 0x100, 8) is BypassClass.NONE

    def test_disjoint(self):
        assert classify_overlap(0x100, 8, 0x500, 8) is BypassClass.NONE

    def test_single_byte_overlap_counts(self):
        # "a dependence arises when the accesses overlap (even a single byte)"
        assert classify_overlap(0x100, 8, 0x107, 8) is BypassClass.MDP_ONLY

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            classify_overlap(0x100, 0, 0x100, 8)
        with pytest.raises(ValueError):
            classify_overlap(0x100, 8, 0x100, -1)

    @given(st.integers(min_value=0, max_value=1 << 20),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=1 << 20),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=200)
    def test_property_consistent_with_byte_sets(self, sa, ss, la, ls):
        store_bytes = set(range(sa, sa + ss))
        load_bytes = set(range(la, la + ls))
        cls = classify_overlap(sa, ss, la, ls)
        overlap = bool(store_bytes & load_bytes)
        assert cls.is_dependence == overlap
        if cls.is_bypassable:
            assert load_bytes <= store_bytes
        if overlap and not load_bytes <= store_bytes:
            assert cls is BypassClass.MDP_ONLY


class TestDependenceTracker:
    def test_no_stores_no_dependence(self):
        t = DependenceTracker()
        distance, store, cls = t.find_dependence(0x100, 8, load_seq=5)
        assert (distance, store, cls) == (0, None, BypassClass.NONE)

    def test_immediate_dependence_distance_one(self):
        t = DependenceTracker()
        t.record_raw_store(seq=0, address=0x100, size=8)
        distance, store, cls = t.find_dependence(0x100, 8, load_seq=1)
        assert distance == 1
        assert store.seq == 0
        assert cls is BypassClass.DIRECT

    def test_distance_counts_intervening_stores(self):
        t = DependenceTracker()
        t.record_raw_store(0, 0x100, 8)
        t.record_raw_store(1, 0x200, 8)
        t.record_raw_store(2, 0x300, 8)
        distance, store, _ = t.find_dependence(0x100, 8, load_seq=3)
        assert distance == 3
        assert store.seq == 0

    def test_youngest_overlapping_store_wins(self):
        t = DependenceTracker()
        t.record_raw_store(0, 0x100, 8)
        t.record_raw_store(1, 0x100, 8)
        distance, store, _ = t.find_dependence(0x100, 8, load_seq=2)
        assert store.seq == 1
        assert distance == 1

    def test_store_window_eviction(self):
        t = DependenceTracker(window=2)
        t.record_raw_store(0, 0x100, 8)
        t.record_raw_store(1, 0x200, 8)
        t.record_raw_store(2, 0x300, 8)
        # The store to 0x100 fell out of the 2-entry window.
        distance, store, cls = t.find_dependence(0x100, 8, load_seq=3)
        assert (distance, store, cls) == (0, None, BypassClass.NONE)

    def test_instruction_window_bound(self):
        t = DependenceTracker(window=100, instr_window=10)
        t.record_raw_store(0, 0x100, 8)
        # Within the instruction window: found.
        assert t.find_dependence(0x100, 8, load_seq=5)[0] == 1
        # Beyond it: the store has drained.
        assert t.find_dependence(0x100, 8, load_seq=50)[0] == 0

    def test_partial_overlap_classified(self):
        t = DependenceTracker()
        t.record_raw_store(0, 0x100, 8)
        _, _, cls = t.find_dependence(0x106, 4, load_seq=1)
        assert cls is BypassClass.MDP_ONLY

    def test_reset(self):
        t = DependenceTracker()
        t.record_raw_store(0, 0x100, 8)
        t.reset()
        assert t.store_count == 0
        assert t.find_dependence(0x100, 8, load_seq=1)[0] == 0

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            DependenceTracker(window=0)
        with pytest.raises(ValueError):
            DependenceTracker(instr_window=0)

    def test_store_count_monotonic(self):
        t = DependenceTracker(window=4)
        for i in range(10):
            t.record_raw_store(i, 0x100 + 16 * i, 8)
        assert t.store_count == 10

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                              st.sampled_from([4, 8])),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_distance_matches_naive_scan(self, stores):
        """Tracker agrees with a brute-force youngest-overlap scan."""
        window = 16
        t = DependenceTracker(window=window, instr_window=10_000)
        log = []
        for i, (slot, size) in enumerate(stores):
            addr = 0x1000 + slot * 8
            t.record_raw_store(i, addr, size)
            log.append((i, addr, size))
        load_addr, load_size = 0x1000 + stores[-1][0] * 8, 8
        distance, store, _ = t.find_dependence(load_addr, load_size,
                                               load_seq=len(stores))
        # Brute force over the window.
        expected = None
        for rank, (seq, addr, size) in enumerate(reversed(log[-window:])):
            if addr < load_addr + load_size and load_addr < addr + size:
                expected = (rank + 1, seq)
                break
        if expected is None:
            assert distance == 0
        else:
            assert (distance, store.seq) == expected
