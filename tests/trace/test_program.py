"""Tests for the static program builder."""

import random

import pytest

from repro.trace.profiles import get_profile
from repro.trace.program import (
    PAIR_GEOMETRY,
    SLOT_STRIDE,
    BranchBehavior,
    IndirectBehavior,
    PairInfo,
    StaticKind,
    build_program,
)
from repro.trace.uop import BypassClass, OpClass


class TestBranchBehavior:
    def test_iid_respects_bias_statistically(self):
        rng = random.Random(0)
        b = BranchBehavior(0.7)
        rate = sum(b.outcome(i, rng) for i in range(5000)) / 5000
        assert 0.65 < rate < 0.75

    def test_pattern_deterministic_without_noise(self):
        b = BranchBehavior(0.5, pattern=[True, False, True], noise=0.0)
        rng = random.Random(0)
        assert [b.outcome(i, rng) for i in range(6)] == [
            True, False, True, True, False, True
        ]

    def test_pattern_noise_flips_occasionally(self):
        b = BranchBehavior(0.5, pattern=[True] * 4, noise=0.5)
        rng = random.Random(0)
        outcomes = [b.outcome(i, rng) for i in range(200)]
        assert any(not o for o in outcomes)

    def test_random_pattern_period_is_power_of_two(self):
        rng = random.Random(7)
        for _ in range(50):
            b = BranchBehavior.random_pattern(0.7, rng)
            period = len(b.pattern)
            assert period & (period - 1) == 0

    def test_random_pattern_never_all_not_taken(self):
        rng = random.Random(3)
        for _ in range(100):
            b = BranchBehavior.random_pattern(0.05, rng)
            assert any(b.pattern)

    def test_bias_validation(self):
        with pytest.raises(ValueError):
            BranchBehavior(1.5)
        with pytest.raises(ValueError):
            BranchBehavior(0.5, noise=-0.1)


class TestIndirectBehavior:
    def test_pattern_targets(self):
        b = IndirectBehavior([0x10, 0x20], [0, 1, 1])
        rng = random.Random(0)
        assert b.target(0, rng) == 0x10
        assert b.target(1, rng) == 0x20
        assert b.target(3, rng) == 0x10

    def test_needs_targets(self):
        with pytest.raises(ValueError):
            IndirectBehavior([], [])

    def test_pattern_index_validation(self):
        with pytest.raises(ValueError):
            IndirectBehavior([0x10], [1])

    def test_random_construction(self):
        rng = random.Random(0)
        b = IndirectBehavior.random(0x400000, rng)
        assert len(b.targets) >= 2
        assert all(t > 0x400000 for t in b.targets)


class TestPairInfo:
    def test_rotation_addresses(self):
        pair = PairInfo(0, 0x1000, rotation=4, store_size=8, load_size=8,
                        load_offset=0, bypass_class=BypassClass.DIRECT)
        addrs = {pair.store_address(i) for i in range(8)}
        assert len(addrs) == 4
        assert pair.store_address(0) == pair.store_address(4)

    def test_load_offset_applied(self):
        pair = PairInfo(0, 0x1000, rotation=1, store_size=8, load_size=4,
                        load_offset=4, bypass_class=BypassClass.OFFSET)
        assert pair.load_address(0) == pair.store_address(0) + 4

    def test_geometry_must_fit_slot(self):
        with pytest.raises(ValueError):
            PairInfo(0, 0x1000, rotation=1, store_size=SLOT_STRIDE + 1,
                     load_size=4, load_offset=0,
                     bypass_class=BypassClass.NO_OFFSET)

    def test_geometry_table_matches_classes(self):
        """PAIR_GEOMETRY must produce the class it claims (Fig. 1)."""
        from repro.trace.dependence import classify_overlap
        for cls, (ss, ls, off) in PAIR_GEOMETRY.items():
            assert classify_overlap(0x100, ss, 0x100 + off, ls) is cls


class TestBuildProgram:
    def test_deterministic(self):
        profile = get_profile("gcc1")
        p1 = build_program(profile, seed=42)
        p2 = build_program(profile, seed=42)
        assert [i.pc for i in p1.static_instructions] == [
            i.pc for i in p2.static_instructions
        ]
        assert len(p1.pairs) == len(p2.pairs)

    def test_different_seeds_differ(self):
        profile = get_profile("gcc1")
        p1 = build_program(profile, seed=1)
        p2 = build_program(profile, seed=2)
        assert (
            [i.kind for i in p1.static_instructions]
            != [i.kind for i in p2.static_instructions]
        )

    def test_unique_pcs(self):
        program = build_program(get_profile("perlbench1"), seed=0)
        pcs = [i.pc for i in program.static_instructions]
        assert len(pcs) == len(set(pcs))

    def test_pairs_have_disjoint_slots(self):
        program = build_program(get_profile("perlbench1"), seed=0)
        ranges = []
        for pair in program.pairs:
            lo = pair.base_address
            hi = lo + pair.rotation * SLOT_STRIDE
            ranges.append((lo, hi))
        ranges.sort()
        for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2

    def test_every_pair_has_store_and_load(self):
        program = build_program(get_profile("perlbench1"), seed=0)
        stores = {id(p) for s in program.segments for i in s.body
                  if i.kind is StaticKind.STORE_PAIR
                  for p in [i.pair]}
        loads = {id(p) for s in program.segments for i in s.body
                 if i.kind is StaticKind.LOAD_PAIR
                 for p in [i.pair]}
        assert stores == loads
        assert len(stores) == len(program.pairs)

    def test_pair_stores_precede_load(self):
        """Every pair's writer(s) come before its load in program order;
        multi-writer pairs have two writers, all others exactly one."""
        program = build_program(get_profile("perlbench1"), seed=0)
        order = {}
        position = 0
        for segment in program.segments:
            for inst in segment.body:
                if inst.pair is not None:
                    order.setdefault(inst.pair.pair_id, []).append(
                        (position, inst.kind)
                    )
                position += 1
        for pair_id, events in order.items():
            kinds = [k for _, k in sorted(events)]
            assert kinds[-1] is StaticKind.LOAD_PAIR, f"pair {pair_id}"
            assert 1 <= len(kinds) - 1 <= 2, f"pair {pair_id}"
            assert all(k is StaticKind.STORE_PAIR for k in kinds[:-1])

    def test_conditional_pairs_have_guarded_store(self):
        program = build_program(get_profile("perlbench1"), seed=0)
        seg_of_store = {}
        seg_of_load = {}
        for segment in program.segments:
            for inst in segment.body:
                if inst.kind is StaticKind.STORE_PAIR:
                    seg_of_store[inst.pair.pair_id] = segment
                elif inst.kind is StaticKind.LOAD_PAIR:
                    seg_of_load[inst.pair.pair_id] = segment
        checked = 0
        for pair in program.pairs:
            if pair.conditional:
                assert seg_of_store[pair.pair_id].is_guarded
                assert not seg_of_load[pair.pair_id].is_guarded
                checked += 1
        assert checked > 0, "profile should produce conditional pairs"

    def test_segment_zero_unguarded(self):
        for seed in range(3):
            program = build_program(get_profile("mcf"), seed=seed)
            assert not program.segments[0].is_guarded

    def test_segment_indices_contiguous(self):
        program = build_program(get_profile("perlbench1"), seed=0)
        assert [s.index for s in program.segments] == list(
            range(len(program.segments))
        )

    def test_branches_have_behaviour(self):
        program = build_program(get_profile("gcc1"), seed=0)
        for inst in program.static_instructions:
            if inst.kind is StaticKind.BRANCH:
                assert inst.branch is not None
            if inst.kind is StaticKind.BRANCH_INDIRECT:
                assert inst.indirect is not None

    def test_loop_branch_always_taken(self):
        program = build_program(get_profile("gcc1"), seed=0)
        rng = random.Random(0)
        assert all(
            program.loop_branch.branch.outcome(i, rng) for i in range(100)
        )

    def test_op_class_mapping(self):
        program = build_program(get_profile("gcc1"), seed=0)
        for inst in program.static_instructions:
            if inst.kind in (StaticKind.LOAD_PAIR, StaticKind.LOAD_STREAM):
                assert inst.op_class is OpClass.LOAD
            elif inst.kind in (StaticKind.STORE_PAIR, StaticKind.STORE_FILLER):
                assert inst.op_class is OpClass.STORE

    def test_low_dep_profile_has_few_pairs(self):
        rich = build_program(get_profile("perlbench2"), seed=0)
        sparse = build_program(get_profile("bwaves"), seed=0)
        assert len(sparse.pairs) < len(rich.pairs)
