"""Golden differential tier: the batched engine is bit-identical.

The batched engine (:class:`repro.core.batched.BatchedPipeline`) exists
purely for speed; the scalar :class:`~repro.core.pipeline.Pipeline` is
the reference.  These tests pin the contract that makes ``--engine
batched`` safe everywhere: for any (benchmark, predictor, core) cell the
two engines produce

* bit-identical :class:`~repro.core.stats.PipelineStats` (every field,
  including the nested branch/accuracy breakdowns),
* bit-identical cycle stacks which both sum exactly to the measured
  cycle count, and
* bit-identical :class:`~repro.obs.telemetry.TableTelemetry` counters.

The fast subset below runs in tier 1 on every push.  The full
(profile × predictor-zoo) grid is the same assertion at scale and runs
behind the ``slow`` marker::

    PYTHONPATH=src python -m pytest tests/equivalence -m slow -q

(see EXPERIMENTS.md).  When a cell here fails, the batched engine has
diverged — fix the engine; never relax the comparison.
"""

from __future__ import annotations

import pytest

from repro.core import GOLDEN_COVE, LION_COVE, BatchedPipeline, Pipeline
from repro.experiments.suite import PREDICTOR_FACTORIES, make_predictor
from repro.obs.telemetry import TableTelemetry
from repro.trace.fixture_cache import cached_trace
from repro.trace.profiles import suite_names

#: Cell geometry: long enough to exercise warm predictors, squashes and
#: every scoreboard wrap-around, short enough for tier 1.
NUM_UOPS = 6_000
MEASURE_FROM = 1_500

#: Fast tier-1 subset: each predictor family and both workload shapes.
FAST_CELLS = [
    ("perlbench1", "mascot"),
    ("perlbench1", "nosq"),
    ("perlbench1", "perfect-mdp-smb"),
    ("lbm", "mascot-opt"),
    ("lbm", "phast"),
    ("exchange2", "store-sets"),
    ("exchange2", "tage-mdp"),
    ("mcf", "idist+store-sets"),
]


def _run(engine_cls, trace, predictor_name, config):
    predictor = make_predictor(predictor_name)
    sink = predictor.attach_telemetry(TableTelemetry())
    pipeline = engine_cls(predictor, config, accounting=True)
    stats = pipeline.run(trace, measure_from=MEASURE_FROM)
    return pipeline, stats, sink


def _stats_diffs(scalar_stats, batched_stats):
    """Field-by-field comparison; returns the differing field names."""
    diffs = []
    for field in vars(scalar_stats):
        a = getattr(scalar_stats, field)
        b = getattr(batched_stats, field)
        if hasattr(a, "__dict__") and not isinstance(a, (int, float)):
            if vars(a) != vars(b):
                diffs.append(field)
        elif a != b:
            diffs.append(field)
    return diffs


def assert_cell_identical(bench, predictor_name, config=GOLDEN_COVE):
    trace = cached_trace(bench, NUM_UOPS)
    scalar_pipe, scalar_stats, scalar_tel = _run(
        Pipeline, trace, predictor_name, config)
    batched_pipe, batched_stats, batched_tel = _run(
        BatchedPipeline, trace, predictor_name, config)

    diffs = _stats_diffs(scalar_stats, batched_stats)
    assert not diffs, (
        f"{bench} x {predictor_name}: stats fields differ: {diffs}"
    )

    scalar_stack = scalar_pipe.cycle_stack.cycles
    batched_stack = batched_pipe.cycle_stack.cycles
    assert scalar_stack == batched_stack, (
        f"{bench} x {predictor_name}: cycle stacks differ"
    )
    # Both stacks must also account for every measured cycle exactly.
    scalar_pipe.cycle_stack.validate(scalar_stats.cycles)
    batched_pipe.cycle_stack.validate(batched_stats.cycles)

    assert scalar_tel.to_dict() == batched_tel.to_dict(), (
        f"{bench} x {predictor_name}: telemetry counters differ"
    )


class TestFastSubset:
    """Tier-1 slice of the golden grid (runs on every push)."""

    @pytest.mark.parametrize("bench,predictor", FAST_CELLS)
    def test_cell_bit_identical(self, bench, predictor):
        assert_cell_identical(bench, predictor)

    def test_lion_cove_core(self):
        # A second core config: different window/port geometry stresses
        # the phase-B structural modelling.
        assert_cell_identical("perlbench1", "mascot", config=LION_COVE)

    def test_whole_trace_measurement_window(self):
        # measure_from=0 exercises the no-warmup path in both engines.
        trace = cached_trace("lbm", 4_000)
        for engine_cls in (Pipeline, BatchedPipeline):
            predictor = make_predictor("mascot")
            stats = engine_cls(predictor, GOLDEN_COVE).run(trace)
            assert stats.instructions == 4_000


@pytest.mark.slow
class TestFullGrid:
    """Every profile x the whole predictor zoo (slow tier)."""

    @pytest.mark.parametrize("bench", suite_names())
    def test_profile_against_full_zoo(self, bench):
        for predictor in sorted(PREDICTOR_FACTORIES):
            assert_cell_identical(bench, predictor)
