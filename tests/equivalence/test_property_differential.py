"""Property-based differential tests: random traces, both engines.

The golden tier (:mod:`tests.equivalence.test_golden_equivalence`) pins the
engines on the committed benchmark profiles; this module attacks the same
contract with hypothesis-chosen trace geometry — generator seeds, lengths
that don't line up with any window size, measurement offsets — plus the
columnar trace view the batched engine consumes.

All tests run ``derandomize=True`` so the explored seeds are a pure
function of the test source (no run-to-run variance, per the det-* rules).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import GOLDEN_COVE, BatchedPipeline, Pipeline
from repro.experiments.suite import make_predictor
from repro.trace.columns import TraceColumns
from repro.trace.fixture_cache import cached_trace
from repro.trace.generator import generate_trace
from repro.trace.profiles import suite_names

from .test_golden_equivalence import _stats_diffs

#: One predictor per family with distinct history/scoreboard usage —
#: enough to exercise every Phase A replay path on random traces.
PROPERTY_PREDICTORS = ("mascot", "nosq", "tage-mdp")

_UOP_FIELDS = ("seq", "pc", "op", "srcs", "taken", "target", "address",
               "size", "addr_src", "store_distance", "dep_store_seq",
               "bypass")


class TestTraceColumns:
    @given(bench=st.sampled_from(sorted(suite_names())),
           num_uops=st.integers(min_value=1, max_value=600))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_round_trips_every_uop_field(self, bench, num_uops):
        # The columns claim to be a lossless recoding of the trace: -1
        # sentinels for None, enum codes for the enums.  uop_fields() is
        # the decode direction; it must reproduce each MicroOp exactly.
        trace = cached_trace(bench, num_uops)
        cols = TraceColumns.from_trace(trace)
        assert cols.n == len(trace)
        for uop in trace:
            decoded = cols.uop_fields(uop.seq)
            for field in _UOP_FIELDS:
                assert decoded[field] == getattr(uop, field), (
                    f"{bench} uop {uop.seq}: field {field!r} mangled"
                )

    def test_ensure_memoises_by_identity(self):
        trace = cached_trace("perlbench1", 64)
        assert TraceColumns.ensure(trace) is TraceColumns.ensure(trace)
        # A rebuilt (equal but distinct) trace gets fresh columns.
        rebuilt = list(trace)
        assert TraceColumns.ensure(rebuilt) is not TraceColumns.ensure(trace)


class TestRandomTraceEquivalence:
    @given(bench=st.sampled_from(sorted(suite_names())),
           predictor=st.sampled_from(PROPERTY_PREDICTORS),
           program_seed=st.integers(min_value=0, max_value=2**16),
           trace_seed=st.integers(min_value=0, max_value=2**16),
           num_uops=st.integers(min_value=200, max_value=1_200),
           warmup_fraction=st.sampled_from((0, 4)))
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_scalar_and_batched_stats_identical(self, bench, predictor,
                                                program_seed, trace_seed,
                                                num_uops, warmup_fraction):
        trace = generate_trace(bench, num_uops, program_seed=program_seed,
                               trace_seed=trace_seed)
        measure_from = num_uops // warmup_fraction if warmup_fraction else 0

        results = []
        for engine_cls in (Pipeline, BatchedPipeline):
            pipeline = engine_cls(make_predictor(predictor), GOLDEN_COVE,
                                  accounting=True)
            stats = pipeline.run(trace, measure_from=measure_from)
            results.append((pipeline, stats))

        (scalar_pipe, scalar_stats), (batched_pipe, batched_stats) = results
        diffs = _stats_diffs(scalar_stats, batched_stats)
        assert not diffs, (
            f"{bench} x {predictor} seeds=({program_seed},{trace_seed}) "
            f"n={num_uops} m={measure_from}: stats fields differ: {diffs}"
        )
        assert scalar_pipe.cycle_stack.cycles == batched_pipe.cycle_stack.cycles
        scalar_pipe.cycle_stack.validate(scalar_stats.cycles)
        batched_pipe.cycle_stack.validate(batched_stats.cycles)
