"""Tests for the three-level memory hierarchy."""

import pytest

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


class TestConfig:
    def test_default_matches_table1(self):
        c = HierarchyConfig()
        assert c.l1d_size == 48 * 1024
        assert c.l1d_ways == 12
        assert c.l1d_latency == 5
        assert c.l2_latency == 14
        assert c.l3_latency == 36
        assert c.memory_latency == 100

    def test_latencies_must_increase(self):
        with pytest.raises(ValueError):
            HierarchyConfig(l2_latency=4)
        with pytest.raises(ValueError):
            HierarchyConfig(memory_latency=30)

    def test_positive_latencies(self):
        with pytest.raises(ValueError):
            HierarchyConfig(l1d_latency=0)


class TestLoadLatency:
    def _hierarchy(self, prefetch=False):
        return MemoryHierarchy(HierarchyConfig(prefetch_enabled=prefetch))

    def test_cold_access_costs_memory(self):
        h = self._hierarchy()
        assert h.load_latency(0x400000, 0x12345000) == 100

    def test_second_access_hits_l1(self):
        h = self._hierarchy()
        h.load_latency(0x400000, 0x12345000)
        assert h.load_latency(0x400000, 0x12345000) == 5

    def test_l1_victim_hits_l2(self):
        h = self._hierarchy()
        # Touch a line, then stream enough lines through the (48 KB) L1 to
        # evict it while staying inside the (1.25 MB) L2.
        h.load_latency(0x400000, 0x100000)
        for i in range(1, 2048):  # 128 KB of distinct lines
            h.load_latency(0x400000, 0x100000 + 64 * i)
        assert h.load_latency(0x400000, 0x100000) == 14

    def test_store_probe_warms_cache(self):
        h = self._hierarchy()
        h.store_probe(0x5000)
        assert h.load_latency(0x400000, 0x5000) == 5

    def test_prefetcher_hides_stride_latency(self):
        h_with = MemoryHierarchy(HierarchyConfig(prefetch_enabled=True))
        h_without = MemoryHierarchy(HierarchyConfig(prefetch_enabled=False))
        pc = 0x400100

        def total(h):
            return sum(
                h.load_latency(pc, 0x800000 + 64 * i) for i in range(64)
            )

        assert total(h_with) < total(h_without)

    def test_reset(self):
        h = self._hierarchy()
        h.load_latency(0x400000, 0x9000)
        h.reset()
        assert h.load_latency(0x400000, 0x9000) == 100
        assert h.l1d.stats.accesses == 1
