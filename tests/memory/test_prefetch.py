"""Tests for the IP-stride prefetcher."""

import pytest

from repro.memory.prefetch import IPStridePrefetcher


class TestStrideDetection:
    def test_constant_stride_triggers_prefetch(self):
        pf = IPStridePrefetcher(degree=3)
        pc = 0x400100
        issued = []
        for i in range(8):
            issued = pf.observe(pc, 0x10000 + 64 * i)
        assert issued == [0x10000 + 64 * 8, 0x10000 + 64 * 9,
                          0x10000 + 64 * 10]

    def test_no_prefetch_before_confidence(self):
        pf = IPStridePrefetcher(degree=3, confidence_threshold=2)
        pc = 0x400100
        assert pf.observe(pc, 0x10000) == []
        assert pf.observe(pc, 0x10040) == []  # stride learned, conf 0

    def test_random_addresses_no_prefetch(self):
        pf = IPStridePrefetcher()
        pc = 0x400100
        for addr in (0x1000, 0x9000, 0x3000, 0xF000, 0x2000, 0x8800):
            assert pf.observe(pc, addr) == []

    def test_zero_stride_never_prefetches(self):
        pf = IPStridePrefetcher()
        pc = 0x400100
        for _ in range(10):
            out = pf.observe(pc, 0x5000)
        assert out == []

    def test_stride_change_resets_confidence(self):
        pf = IPStridePrefetcher()
        pc = 0x400100
        for i in range(6):
            pf.observe(pc, 0x10000 + 64 * i)
        # Break the stride.
        assert pf.observe(pc, 0x90000) == []
        assert pf.observe(pc, 0x90008) == []

    def test_negative_stride_supported(self):
        pf = IPStridePrefetcher(degree=2)
        pc = 0x400100
        out = []
        for i in range(8):
            out = pf.observe(pc, 0x20000 - 64 * i)
        assert out == [0x20000 - 64 * 8, 0x20000 - 64 * 9]


class TestTable:
    def test_pc_conflict_reallocates(self):
        pf = IPStridePrefetcher(table_bits=2)
        # Two PCs mapping to the same entry with different tags.
        pc_a = 0x400000
        pc_b = pc_a + (1 << (1 + 2)) * 3  # same index, different tag
        for i in range(6):
            pf.observe(pc_a, 0x10000 + 64 * i)
        # pc_b steals the entry; pc_a must re-learn afterwards.
        pf.observe(pc_b, 0x90000)
        assert pf.observe(pc_a, 0x10000 + 64 * 6) == []

    def test_issued_counter(self):
        pf = IPStridePrefetcher(degree=2)
        pc = 0x400100
        for i in range(10):
            pf.observe(pc, 0x10000 + 64 * i)
        assert pf.issued > 0
        assert pf.issued % 2 == 0

    def test_reset(self):
        pf = IPStridePrefetcher()
        for i in range(10):
            pf.observe(0x400100, 0x10000 + 64 * i)
        pf.reset()
        assert pf.issued == 0
        assert pf.observe(0x400100, 0x10000 + 64 * 10) == []

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            IPStridePrefetcher(degree=0)
