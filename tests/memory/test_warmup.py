"""Functional cache warmup: MTR reconstruction vs replayed ground truth."""

import numpy as np
import pytest

from repro.core.config import GOLDEN_COVE
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.warmup import (
    WarmupIndex,
    memory_access_stream,
    preload_cache,
    warm_hierarchy,
)

from tests.conftest import small_trace


def replay(cache, addresses):
    for address in addresses:
        cache.lookup(int(address))


class TestCachePreload:
    def test_installs_lines_in_lru_order(self):
        cache = Cache("toy", size_bytes=4 * 64 * 2, ways=2)  # 4 sets
        cache.preload(1, [10, 20])
        assert cache._sets[1] == [10, 20]

    def test_rejects_out_of_range_set(self):
        cache = Cache("toy", size_bytes=4 * 64 * 2, ways=2)
        with pytest.raises(ValueError):
            cache.preload(4, [1])
        with pytest.raises(ValueError):
            cache.preload(-1, [1])

    def test_rejects_more_lines_than_ways(self):
        cache = Cache("toy", size_bytes=4 * 64 * 2, ways=2)
        with pytest.raises(ValueError):
            cache.preload(0, [1, 2, 3])

    def test_preload_does_not_touch_stats(self):
        cache = Cache("toy", size_bytes=4 * 64 * 2, ways=2)
        cache.preload(0, [4, 8])
        assert cache.stats.hits == 0 and cache.stats.misses == 0


class TestMtrExactness:
    """For a cache that observes every access, the reconstruction rule
    (last ``ways`` distinct lines per set, by last access) must equal the
    state left by replaying the stream through ``lookup``."""

    @pytest.mark.parametrize("bench", ["mcf", "lbm", "xz"])
    def test_matches_replay_on_observing_cache(self, bench):
        trace = small_trace(bench, 20_000)
        positions, addresses = memory_access_stream(trace)
        replayed = Cache("ref", size_bytes=16 * 1024, ways=4)
        replay(replayed, addresses)

        reconstructed = Cache("mtr", size_bytes=16 * 1024, ways=4)
        index = WarmupIndex(positions, addresses, 64)
        unique_lines, last_access = index.state_before(len(trace))
        preload_cache(reconstructed, unique_lines, last_access)
        assert reconstructed._sets == replayed._sets


class TestWarmupIndex:
    def oracle_state(self, positions, addresses, start):
        lines = addresses[positions < start] >> 6
        out = {}
        for at, line in enumerate(lines):
            out[int(line)] = at
        return out

    @pytest.mark.parametrize("start", [0, 1, 5_000, 20_000, 10**9])
    def test_state_before_matches_oracle(self, start):
        trace = small_trace("mcf", 20_000)
        positions, addresses = memory_access_stream(trace)
        index = WarmupIndex(positions, addresses, 64)
        unique_lines, last_access = index.state_before(start)
        assert dict(zip(unique_lines.tolist(), last_access.tolist())) \
            == self.oracle_state(positions, addresses, start)
        assert sorted(unique_lines.tolist()) == unique_lines.tolist()

    def test_empty_stream(self):
        empty = np.zeros(0, dtype=np.int64)
        index = WarmupIndex(empty, empty, 64)
        unique_lines, last_access = index.state_before(100)
        assert unique_lines.shape == last_access.shape == (0,)

    def test_warm_equals_warm_hierarchy(self):
        """The indexed path must produce the same hierarchy state as the
        one-shot ``warm_hierarchy`` on the cut prefix."""
        trace = small_trace("xz", 20_000)
        positions, addresses = memory_access_stream(trace)
        cut_position = 12_000
        index = WarmupIndex.from_trace(trace, 64)

        indexed = MemoryHierarchy(GOLDEN_COVE.memory)
        index.warm(indexed, cut_position)

        cut = int(np.searchsorted(positions, cut_position))
        oneshot = MemoryHierarchy(GOLDEN_COVE.memory)
        warm_hierarchy(oneshot, addresses[:cut])

        for a, b in zip((indexed.l1d, indexed.l2, indexed.l3),
                        (oneshot.l1d, oneshot.l2, oneshot.l3)):
            assert a._sets == b._sets


class TestMemoryAccessStream:
    def test_positions_are_load_store_uops(self):
        trace = small_trace("perlbench1", 10_000)
        positions, addresses = memory_access_stream(trace)
        assert len(positions) == len(addresses)
        assert all(trace[p].is_load or trace[p].is_store
                   for p in positions.tolist())
        assert (np.diff(positions) > 0).all()
