"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache


class TestGeometry:
    def test_sets_computed(self):
        cache = Cache("t", 48 * 1024, 12, 64)
        assert cache.num_sets == 64

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache("t", 0, 4)
        with pytest.raises(ValueError):
            Cache("t", 1024, 0)
        with pytest.raises(ValueError):
            Cache("t", 1000, 4, 64)  # not divisible
        with pytest.raises(ValueError):
            Cache("t", 1024, 4, 63)  # non-power-of-two line


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = Cache("t", 1024, 4, 64)
        assert not cache.lookup(0x1000)
        assert cache.lookup(0x1000)

    def test_same_line_different_bytes_hit(self):
        cache = Cache("t", 1024, 4, 64)
        cache.lookup(0x1000)
        assert cache.lookup(0x103F)
        assert not cache.lookup(0x1040)  # next line

    def test_no_fill_on_request(self):
        cache = Cache("t", 1024, 4, 64)
        cache.lookup(0x1000, fill=False)
        assert not cache.contains(0x1000)

    def test_contains_does_not_count(self):
        cache = Cache("t", 1024, 4, 64)
        cache.contains(0x1000)
        assert cache.stats.accesses == 0


class TestLRU:
    def test_eviction_order(self):
        # 1 set, 2 ways.
        cache = Cache("t", 128, 2, 64)
        cache.lookup(0x0000)   # line A
        cache.lookup(0x1000)   # line B (same set; all map to set 0)
        cache.lookup(0x0000)   # touch A -> B becomes LRU
        cache.lookup(0x2000)   # line C evicts B
        assert cache.contains(0x0000)
        assert not cache.contains(0x1000)
        assert cache.contains(0x2000)

    def test_eviction_returns_victim(self):
        cache = Cache("t", 128, 2, 64)
        cache.fill(0x0000)
        cache.fill(0x1000)
        evicted = cache.fill(0x2000)
        assert evicted == 0x0000

    def test_refill_existing_returns_none(self):
        cache = Cache("t", 128, 2, 64)
        cache.fill(0x0000)
        assert cache.fill(0x0000) is None

    def test_working_set_within_capacity_all_hits(self):
        cache = Cache("t", 4096, 4, 64)
        lines = [0x1000 + 64 * i for i in range(32)]  # 2 KB working set
        for addr in lines:
            cache.lookup(addr)
        for addr in lines:
            assert cache.lookup(addr)

    def test_streaming_misses(self):
        cache = Cache("t", 1024, 4, 64)
        for i in range(64):
            cache.lookup(0x10000 + 64 * i)
        # Pure streaming over 4 KB through a 1 KB cache: all misses.
        assert cache.stats.misses == 64


class TestStats:
    def test_hit_and_miss_rates(self):
        cache = Cache("t", 1024, 4, 64)
        cache.lookup(0x1000)
        cache.lookup(0x1000)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_empty_rates(self):
        cache = Cache("t", 1024, 4, 64)
        assert cache.stats.hit_rate == 0.0

    def test_prefetch_fill_counted(self):
        cache = Cache("t", 1024, 4, 64)
        cache.fill(0x1000, is_prefetch=True)
        assert cache.stats.prefetch_fills == 1

    def test_reset(self):
        cache = Cache("t", 1024, 4, 64)
        cache.lookup(0x1000)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.contains(0x1000)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=500))
@settings(max_examples=40, deadline=None)
def test_property_occupancy_bounded(line_ids):
    """The cache never holds more lines than its capacity per set."""
    cache = Cache("t", 512, 2, 64)  # 4 sets x 2 ways
    for lid in line_ids:
        cache.lookup(lid * 64)
    for set_index, ways in cache._sets.items():
        assert len(ways) <= 2


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=300))
@settings(max_examples=40, deadline=None)
def test_property_most_recent_line_always_present(line_ids):
    """A just-accessed line is always resident immediately afterwards."""
    cache = Cache("t", 512, 2, 64)
    for lid in line_ids:
        cache.lookup(lid * 64)
        assert cache.contains(lid * 64)
