"""Tests for the MSHR file."""

import pytest

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.mshr import MSHRFile


class TestMSHRFile:
    def test_miss_below_capacity_starts_immediately(self):
        mshrs = MSHRFile(entries=4)
        start, completion = mshrs.request(line=1, now=100, fill_latency=50)
        assert start == 100
        assert completion == 150

    def test_secondary_miss_merges(self):
        mshrs = MSHRFile(entries=4)
        _, first = mshrs.request(1, 100, 50)
        start, completion = mshrs.request(1, 110, 50)
        assert completion == first
        assert mshrs.secondary_misses == 1
        assert mshrs.primary_misses == 1

    def test_full_file_stalls_new_miss(self):
        mshrs = MSHRFile(entries=2)
        mshrs.request(1, 0, 100)   # completes at 100
        mshrs.request(2, 0, 60)    # completes at 60
        start, completion = mshrs.request(3, 10, 100)
        assert start == 60         # waits for the earliest fill
        assert completion == 160
        assert mshrs.stalls == 1

    def test_expired_entries_free_slots(self):
        mshrs = MSHRFile(entries=1)
        mshrs.request(1, 0, 10)    # completes at 10
        start, _ = mshrs.request(2, 50, 10)
        assert start == 50         # no stall: old fill long done
        assert mshrs.stalls == 0

    def test_occupancy(self):
        mshrs = MSHRFile(entries=4)
        mshrs.request(1, 0, 100)
        mshrs.request(2, 0, 100)
        assert mshrs.occupancy == 2

    def test_reset(self):
        mshrs = MSHRFile(entries=4)
        mshrs.request(1, 0, 100)
        mshrs.reset()
        assert mshrs.occupancy == 0
        assert mshrs.primary_misses == 0

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(entries=0)


class TestHierarchyIntegration:
    def test_timed_load_hit_has_no_mshr_effect(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch_enabled=False))
        h.load_latency(0x400000, 0x5000)  # warm the line
        completion = h.timed_load(0x400000, 0x5000, now=1000)
        assert completion == 1000 + h.config.l1d_latency
        assert h.mshrs.primary_misses == 0

    def test_timed_load_miss_allocates_mshr(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch_enabled=False))
        completion = h.timed_load(0x400000, 0x9000, now=0)
        assert completion == h.config.memory_latency
        assert h.mshrs.primary_misses == 1

    def test_mshr_pressure_delays_misses(self):
        config = HierarchyConfig(prefetch_enabled=False, mshr_entries=2)
        h = MemoryHierarchy(config)
        # Three concurrent misses through 2 MSHRs: the third waits.
        h.timed_load(0x400000, 0x100000, now=0)
        h.timed_load(0x400000, 0x200000, now=0)
        completion = h.timed_load(0x400000, 0x300000, now=0)
        assert completion == 2 * config.memory_latency
        assert h.mshrs.stalls == 1

    def test_mshrs_disabled(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch_enabled=False,
                                            mshr_entries=0))
        assert h.mshrs is None
        completion = h.timed_load(0x400000, 0x9000, now=0)
        assert completion == h.config.memory_latency

    def test_reset_clears_mshrs(self):
        h = MemoryHierarchy()
        h.timed_load(0x400000, 0x9000, now=0)
        h.reset()
        assert h.mshrs.occupancy == 0
