"""Tests for the GShare direction predictor."""

import random

import pytest

from repro.branch.gshare import GShare


class TestConstruction:
    def test_storage_bits(self):
        assert GShare(index_bits=10).storage_bits == 2 * 1024

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GShare(index_bits=0)
        with pytest.raises(ValueError):
            GShare(history_bits=-1)


class TestLearning:
    def test_always_taken(self):
        pred = GShare()
        correct = sum(
            pred.predict_and_train(0x400000, True) for _ in range(200)
        )
        assert correct >= 198  # at most a cold-start error or two

    def test_always_not_taken(self):
        pred = GShare()
        for _ in range(10):
            pred.predict_and_train(0x400000, False)
        assert all(
            pred.predict_and_train(0x400000, False) for _ in range(100)
        )

    def test_short_pattern(self):
        pred = GShare()
        pattern = [True, True, False]
        # Warm up.
        for i in range(300):
            pred.predict_and_train(0x400000, pattern[i % 3])
        correct = sum(
            pred.predict_and_train(0x400000, pattern[i % 3])
            for i in range(300)
        )
        assert correct >= 290

    def test_biased_random_branch(self):
        rng = random.Random(0)
        pred = GShare()
        correct = 0
        for _ in range(4000):
            taken = rng.random() < 0.9
            correct += pred.predict_and_train(0x400020, taken)
        # Should be near the bias (90%), definitely above chance.
        assert correct / 4000 > 0.75


class TestStats:
    def test_counters_update(self):
        pred = GShare()
        pred.predict_and_train(0x400000, True)
        assert pred.stats.conditional_branches == 1

    def test_mpki(self):
        pred = GShare()
        for _ in range(100):
            pred.predict_and_train(0x400000, True)
        assert pred.stats.mpki(10_000) == pytest.approx(
            pred.stats.mispredictions / 10
        )
        with pytest.raises(ValueError):
            pred.stats.mpki(0)

    def test_indirect_last_target(self):
        pred = GShare()
        assert not pred.observe_indirect(0x400100, 0x500000)  # cold miss
        assert pred.observe_indirect(0x400100, 0x500000)      # repeat hits
        assert not pred.observe_indirect(0x400100, 0x600000)  # change misses
        assert pred.stats.indirect_branches == 3
        assert pred.stats.indirect_mispredictions == 2
