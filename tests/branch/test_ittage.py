"""Tests for the ITTAGE indirect target predictor."""

import random

import pytest

from repro.branch.ittage import ITTAGE
from repro.branch.tage import TAGEBranchPredictor


class TestConstruction:
    def test_histories_validated(self):
        with pytest.raises(ValueError):
            ITTAGE(histories=(8, 2))
        with pytest.raises(ValueError):
            ITTAGE(histories=())

    def test_storage_positive(self):
        assert ITTAGE().storage_bits > 0


class TestLearning:
    def test_monomorphic_target(self):
        """A single-target indirect branch is learned immediately."""
        it = ITTAGE()
        for _ in range(5):
            it.predict_and_train(0x400100, 0x500000)
            it.on_outcome(0x500000)
        assert it.predict(0x400100) == 0x500000

    def test_cold_predicts_none(self):
        assert ITTAGE().predict(0x400100) is None

    def test_history_patterned_targets(self):
        """An alternating-target branch defeats last-target but not
        ITTAGE."""
        targets = [0x500000, 0x600000]
        it = ITTAGE()
        # Warm up.
        for i in range(600):
            t = targets[i % 2]
            it.predict_and_train(0x400100, t)
            it.on_outcome(t)
        correct = 0
        for i in range(600, 1000):
            t = targets[i % 2]
            correct += it.predict_and_train(0x400100, t)
            it.on_outcome(t)
        assert correct / 400 > 0.9

    def test_beats_last_target_on_patterns(self):
        targets = [0x500000, 0x600000, 0x500000, 0x700000]

        def run_last_target():
            last = {}
            correct = 0
            for i in range(1200):
                t = targets[i % 4]
                correct += last.get(0x400100) == t
                last[0x400100] = t
            return correct / 1200

        def run_ittage():
            it = ITTAGE()
            correct = 0
            for i in range(1200):
                t = targets[i % 4]
                correct += it.predict_and_train(0x400100, t)
                it.on_outcome(t)
            return correct / 1200

        assert run_ittage() > run_last_target()

    def test_misprediction_rate_tracked(self):
        it = ITTAGE()
        it.predict_and_train(0x400100, 0x500000)
        assert it.lookups == 1
        assert 0.0 <= it.misprediction_rate <= 1.0


class TestTageIntegration:
    def test_tage_uses_ittage_by_default(self):
        pred = TAGEBranchPredictor()
        assert pred._ittage is not None

    def test_opt_out_falls_back_to_last_target(self):
        pred = TAGEBranchPredictor(use_ittage=False)
        assert pred._ittage is None
        assert not pred.observe_indirect(0x400100, 0x500000)
        assert pred.observe_indirect(0x400100, 0x500000)

    def test_ittage_handles_patterned_indirects(self):
        pred = TAGEBranchPredictor()
        targets = [0x500000, 0x600000]
        for i in range(800):
            pred.observe_indirect(0x400100, targets[i % 2])
        before = pred.stats.indirect_mispredictions
        for i in range(800, 1000):
            pred.observe_indirect(0x400100, targets[i % 2])
        tail_errors = pred.stats.indirect_mispredictions - before
        assert tail_errors < 40
