"""Tests for the simplified TAGE branch predictor."""

import random

import pytest

from repro.branch.tage import TAGEBranchPredictor


class TestConstruction:
    def test_default_tables(self):
        pred = TAGEBranchPredictor()
        assert len(pred.histories) == 6

    def test_histories_must_increase(self):
        with pytest.raises(ValueError):
            TAGEBranchPredictor(histories=(8, 4))

    def test_histories_must_be_positive(self):
        with pytest.raises(ValueError):
            TAGEBranchPredictor(histories=(0, 4))

    def test_storage_accounting(self):
        pred = TAGEBranchPredictor(histories=(4, 8), index_bits=4,
                                   tag_bits=7, base_index_bits=5,
                                   use_ittage=False)
        # 2 tables x 16 entries x (7 tag + 3 ctr + 2 useful + 1 valid)
        # + 32 x 2-bit bimodal.
        assert pred.storage_bits == 2 * 16 * 13 + 32 * 2

    def test_storage_includes_ittage_when_enabled(self):
        with_it = TAGEBranchPredictor()
        without = TAGEBranchPredictor(use_ittage=False)
        assert with_it.storage_bits > without.storage_bits


class TestLearning:
    def test_monotone_branch(self):
        pred = TAGEBranchPredictor()
        correct = sum(
            pred.predict_and_train(0x400000, True) for _ in range(300)
        )
        assert correct >= 295

    def test_single_pattern_branch(self):
        pred = TAGEBranchPredictor()
        pattern = [True, True, True, False]
        for i in range(600):
            pred.predict_and_train(0x400000, pattern[i % 4])
        correct = sum(
            pred.predict_and_train(0x400000, pattern[i % 4])
            for i in range(400)
        )
        assert correct / 400 > 0.98

    def test_history_correlated_branch(self):
        """Branch B follows branch A's direction: TAGE must exploit it."""
        rng = random.Random(0)
        pred = TAGEBranchPredictor()
        for _ in range(3000):
            a = rng.random() < 0.5
            pred.predict_and_train(0x400000, a)
            pred.predict_and_train(0x400010, a)  # perfectly correlated
        correct = 0
        for _ in range(1000):
            a = rng.random() < 0.5
            pred.predict_and_train(0x400000, a)
            correct += pred.predict_and_train(0x400010, a)
        assert correct / 1000 > 0.9

    def test_beats_bimodal_on_5050_pattern(self):
        """A 50/50 alternating branch defeats bimodal but not TAGE."""
        pred = TAGEBranchPredictor()
        for i in range(800):
            pred.predict_and_train(0x400000, i % 2 == 0)
        correct = sum(
            pred.predict_and_train(0x400000, i % 2 == 0)
            for i in range(400)
        )
        assert correct / 400 > 0.95


class TestUsefulDecay:
    def test_decay_halves_useful(self):
        pred = TAGEBranchPredictor(useful_reset_period=10_000)
        # Populate some entries.
        pattern = [True, False]
        for i in range(500):
            pred.predict_and_train(0x400000 + 8 * (i % 16), pattern[i % 2])
        before = [
            entry.useful
            for table in pred._tables for entry in table if entry.valid
        ]
        pred._decay_useful()
        after = [
            entry.useful
            for table in pred._tables for entry in table if entry.valid
        ]
        assert all(a == b >> 1 for b, a in zip(before, after))
