"""Sampled timing reconstruction: fidelity, engine agreement, warmup."""

import pytest

from repro.experiments.runner import run_timing
from repro.experiments.suite import make_predictor
from repro.sampling import SamplingPolicy, select_regions
from repro.sampling.reconstruct import (
    run_sampled_prediction,
    run_sampled_timing,
    warmed_interval,
)

from tests.conftest import small_trace


def policy(**kwargs):
    kwargs.setdefault("interval_length", 10_000)
    kwargs.setdefault("max_k", 4)
    kwargs.setdefault("warmup_intervals", 2)
    return SamplingPolicy(**kwargs)


def mascot():
    return make_predictor("mascot")


class TestReconstructionFidelity:
    def test_tracks_full_run_within_ci(self):
        trace = small_trace("mcf", 120_000)
        sampled = run_sampled_timing(trace, mascot, policy(),
                                     engine="batched")
        full = run_timing(trace, mascot(), engine="batched")
        error = abs(sampled.stats.ipc - full.ipc) / full.ipc
        assert error < 0.05
        lo, hi = sampled.ipc_ci
        assert lo <= sampled.stats.ipc <= hi
        assert lo <= full.ipc <= hi

    def test_counters_scale_to_full_trace(self):
        trace = small_trace("xz", 60_000)
        sampled = run_sampled_timing(trace, mascot, policy(),
                                     engine="batched")
        stats = sampled.stats
        assert stats.instructions == len(trace)
        assert stats.accuracy.instructions == len(trace)
        assert stats.cycles > 0
        meta = stats.sampling
        assert meta["metric"] == "ipc"
        assert meta["estimate"] == pytest.approx(stats.ipc, rel=1e-6)
        assert meta["ci"][0] < meta["estimate"] < meta["ci"][1]
        assert meta["k"] == sampled.selection.k
        assert meta["simulated_uops"] == sampled.simulated_uops
        assert sampled.simulated_uops < len(trace)

    def test_engines_reconstruct_identically(self):
        trace = small_trace("perlbench1", 60_000)
        scalar = run_sampled_timing(trace, mascot, policy(), engine="scalar")
        batched = run_sampled_timing(trace, mascot, policy(),
                                     engine="batched")
        assert scalar.stats.cycles == batched.stats.cycles
        assert scalar.stats.sampling == batched.stats.sampling
        assert scalar.ipc_ci == batched.ipc_ci
        for a, b in zip(scalar.region_stats, batched.region_stats):
            assert a.cycles == b.cycles
            assert a.instructions == b.instructions

    def test_functional_warmup_off_still_reconstructs(self):
        trace = small_trace("lbm", 60_000)
        cold = run_sampled_timing(
            trace, mascot, policy(functional_warmup=False),
            engine="batched")
        assert cold.stats.instructions == len(trace)
        assert cold.stats.sampling["policy"]["functional_warmup"] is False


class TestAccountingReconstruction:
    def test_stack_sums_to_cycles_and_engines_agree(self):
        trace = small_trace("mcf", 60_000)
        scalar = run_sampled_timing(trace, mascot, policy(),
                                    engine="scalar", accounting=True)
        batched = run_sampled_timing(trace, mascot, policy(),
                                     engine="batched", accounting=True)
        for sampled in (scalar, batched):
            assert sampled.stack is not None
            assert sum(sampled.stack.cycles.values()) == sampled.stats.cycles
            assert all(c >= 0 for c in sampled.stack.cycles.values())
            assert len(sampled.region_stacks) == sampled.selection.k
        assert scalar.stack.cycles == batched.stack.cycles

    def test_accounting_off_leaves_stack_unset(self):
        trace = small_trace("mcf", 40_000)
        sampled = run_sampled_timing(trace, mascot, policy(),
                                     engine="batched")
        assert sampled.stack is None
        assert sampled.region_stacks is None


class TestWarmedInterval:
    def test_piece_is_warmup_plus_region(self):
        trace = small_trace("xz", 60_000)
        pol = policy()
        selection = select_regions(trace, pol)
        for region in selection.regions:
            piece, warmup = warmed_interval(trace, region, pol)
            assert len(piece) == warmup + pol.interval_length
            expected = min(region.start,
                           pol.warmup_intervals * pol.interval_length)
            assert warmup == expected
            # The measured tail replays exactly the region's code.
            region_pcs = [u.pc for u in trace[region.start:region.end]]
            assert [u.pc for u in piece[warmup:]] == region_pcs

    def test_earliest_region_gets_clipped_warmup(self):
        trace = small_trace("xz", 30_000)
        pol = policy(interval_length=10_000, warmup_intervals=4)
        selection = select_regions(trace, pol)
        first = selection.regions[0]
        piece, warmup = warmed_interval(trace, first, pol)
        assert warmup == first.start  # clipped at the start of the trace
        assert len(piece) == first.end


class TestSampledPrediction:
    def test_mpki_metadata_and_scaled_counts(self):
        trace = small_trace("perlbench1", 60_000)
        result = run_sampled_prediction(trace, mascot, policy())
        assert result.accuracy.instructions == len(trace)
        meta = result.sampling
        assert meta["metric"] == "mpki"
        assert meta["ci"][0] <= meta["estimate"] <= meta["ci"][1]
        assert sum(r["weight"] for r in meta["regions"]) \
            == pytest.approx(1.0)


class TestRunTimingSampledApi:
    def test_sampling_requires_factory(self):
        trace = small_trace("mcf", 40_000)
        with pytest.raises(ValueError, match="predictor_factory"):
            run_timing(trace, None, sampling=policy())

    def test_sampling_excludes_measure_from(self):
        trace = small_trace("mcf", 40_000)
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_timing(trace, None, sampling=policy(),
                       predictor_factory=mascot, measure_from=5_000)

    def test_returns_reconstruction_with_metadata(self):
        trace = small_trace("mcf", 40_000)
        stats = run_timing(trace, None, engine="batched",
                           sampling=policy(), predictor_factory=mascot)
        assert stats.instructions == len(trace)
        assert stats.sampling is not None
        assert stats.sampling["metric"] == "ipc"
