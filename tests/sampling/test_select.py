"""Region selection: determinism, weight invariants, digest stability."""

import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import SamplingPolicy, select_regions

from tests.conftest import small_trace


def policy(interval_length=2000, **kwargs):
    return SamplingPolicy(interval_length=interval_length, **kwargs)


class TestSelectionInvariants:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        interval_length=st.sampled_from([1000, 2000, 3000, 5000]),
        max_k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=7),
    )
    def test_weights_partition_the_trace(self, interval_length, max_k, seed):
        trace = small_trace("xz", 20_000)
        selection = select_regions(
            trace, policy(interval_length, max_k=max_k, seed=seed))
        assert sum(r.weight for r in selection.regions) == pytest.approx(1.0)
        assert sum(r.cluster_size for r in selection.regions) \
            == selection.n_intervals
        assert 1 <= selection.k <= max_k
        assert len(selection.centroids) == selection.k
        indices = [r.index for r in selection.regions]
        assert indices == sorted(indices)
        assert all(r.dispersion >= 0.0 for r in selection.regions)
        for region in selection.regions:
            assert region.start == region.index * interval_length
            assert region.end == region.start + interval_length

    def test_coverage_is_selected_share(self):
        trace = small_trace("xz", 20_000)
        selection = select_regions(trace, policy(2000, max_k=4))
        assert selection.coverage == pytest.approx(
            selection.k / selection.n_intervals)

    def test_bic_scored_every_candidate_k(self):
        trace = small_trace("xz", 20_000)
        selection = select_regions(trace, policy(2000, max_k=4))
        assert sorted(selection.bic_by_k) == [1, 2, 3, 4]


class TestDeterminism:
    def test_repeated_selection_is_identical(self):
        trace = small_trace("perlbench1", 20_000)
        first = select_regions(trace, policy(2000, max_k=4))
        second = select_regions(trace, policy(2000, max_k=4))
        assert first.regions == second.regions
        assert first.digest == second.digest

    def test_digest_distinguishes_policies(self):
        trace = small_trace("perlbench1", 20_000)
        a = select_regions(trace, policy(2000, max_k=4))
        b = select_regions(trace, policy(2000, max_k=4, seed=3))
        assert a.digest != b.digest

    def test_digest_is_bit_identical_across_processes(self):
        """Two interpreters must *prove* they selected the same regions."""
        trace = small_trace("perlbench1", 20_000)
        local = select_regions(trace, policy(2000, max_k=4)).digest
        script = (
            "from repro.sampling import SamplingPolicy, select_regions\n"
            "from repro.trace.generator import generate_trace\n"
            "trace = generate_trace('perlbench1', 20000)\n"
            "policy = SamplingPolicy(interval_length=2000, max_k=4)\n"
            "print(select_regions(trace, policy).digest)\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True,
        ).stdout.strip()
        assert remote == local
