"""The ``--sampling`` flag family across simulate/compare/figure/profile."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


SAMPLED = ["--sampling", "--interval-length", "5000", "--max-k", "3",
           "--warmup-intervals", "1"]


class TestSimulateSampled:
    def test_prints_reconstruction_summary(self, capsys):
        assert main(["simulate", "mcf", "mascot", "--uops", "30000",
                     *SAMPLED]) == 0
        out = capsys.readouterr().out
        assert "sampled: ipc" in out
        assert "CI" in out
        assert "of the trace simulated" in out or "coverage" in out

    def test_interval_length_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["simulate", "mcf", "mascot", "--uops", "30000",
                  "--sampling", "--interval-length", "0"])


class TestCompareSampled:
    def test_cells_annotated_with_ci(self, capsys):
        assert main(["compare", "mascot", "--benchmarks", "mcf",
                     "--uops", "30000", "--no-cache", *SAMPLED]) == 0
        out = capsys.readouterr().out
        assert "+-" in out
        assert "sampled cells" in out
        assert "docs/sampling.md" in out

    def test_unsampled_compare_has_no_footer(self, capsys):
        assert main(["compare", "mascot", "--benchmarks", "mcf",
                     "--uops", "30000", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "sampled cells" not in out
        assert "+-" not in out


class TestFigureGating:
    def test_sampling_rejected_outside_timing_figures(self, capsys):
        assert main(["figure", "fig13", "--sampling"]) == 2
        err = capsys.readouterr().err
        assert "--sampling" in err
        assert "fig7" in err


class TestProfileSampled:
    def test_renders_reconstruction_and_regions(self, capsys):
        assert main(["profile", "mcf", "mascot", "--uops", "30000",
                     *SAMPLED]) == 0
        out = capsys.readouterr().out
        assert "sampled reconstruction" in out
        assert "measured regions" in out
        assert "cycle stack" in out

    def test_measure_from_conflicts(self, capsys):
        assert main(["profile", "mcf", "mascot", "--uops", "30000",
                     "--measure-from", "1000", *SAMPLED]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
