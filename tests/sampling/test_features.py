"""Region fingerprints: vectorised features vs a per-uop scalar oracle.

The memory-access vectors are built with flat ``bincount`` tricks; these
tests recompute every feature block with plain Python loops over the
micro-ops and require exact agreement — the vectorisation must be
lossless, not merely close.
"""

import math

import numpy as np
import pytest

from repro.sampling.features import (
    MAV_DEP_BUCKETS,
    MAV_STRIDE_BUCKETS,
    mav_dim,
    memory_access_vectors,
    num_intervals,
    pc_frequency_vectors,
    region_signatures,
)
from repro.trace.columns import BYPASS_CODES, TraceColumns

from tests.conftest import small_trace


def scalar_mav(trace, interval_length):
    """Reference memory-access vectors, one uop at a time."""
    n_regions = len(trace) // interval_length
    used = n_regions * interval_length
    dim = mav_dim()
    stride = np.zeros((n_regions, MAV_STRIDE_BUCKETS))
    lines = [set() for _ in range(n_regions)]
    loads = [0] * n_regions
    deps = [0] * n_regions
    dep_hist = np.zeros((n_regions, MAV_DEP_BUCKETS))
    bypass = np.zeros((n_regions, len(BYPASS_CODES)))

    previous = None  # (region, address) of the last memory access
    for position, uop in enumerate(trace[:used]):
        region = position // interval_length
        if uop.is_load or uop.is_store:
            if previous is not None and previous[0] == region:
                delta = abs(uop.address - previous[1])
                bucket = (0 if delta == 0 else
                          min(int(math.log2(delta)) + 1,
                              MAV_STRIDE_BUCKETS - 1))
                stride[region][bucket] += 1
            previous = (region, uop.address)
            lines[region].add(uop.address >> 6)
        if uop.is_load:
            loads[region] += 1
            if uop.dep_store_seq is not None and uop.dep_store_seq >= 0:
                deps[region] += 1
                distance = max(uop.store_distance, 1)
                dep_hist[region][min(int(math.log2(distance)),
                                     MAV_DEP_BUCKETS - 1)] += 1
                bypass[region][BYPASS_CODES[uop.bypass]] += 1

    out = np.zeros((n_regions, dim))
    for j in range(n_regions):
        s = stride[j].sum()
        out[j, :MAV_STRIDE_BUCKETS] = stride[j] / s if s else 0.0
        out[j, MAV_STRIDE_BUCKETS] = len(lines[j]) / interval_length
        out[j, MAV_STRIDE_BUCKETS + 1] = deps[j] / max(loads[j], 1)
        h = dep_hist[j].sum()
        base = MAV_STRIDE_BUCKETS + 2
        out[j, base:base + MAV_DEP_BUCKETS] = (
            dep_hist[j] / h if h else 0.0)
        b = bypass[j].sum()
        out[j, base + MAV_DEP_BUCKETS:] = bypass[j] / b if b else 0.0
    return out


class TestMemoryAccessVectors:
    @pytest.mark.parametrize("bench", ["mcf", "perlbench1", "lbm"])
    def test_matches_scalar_oracle_exactly(self, bench):
        trace = small_trace(bench, 12_000)
        cols = TraceColumns.ensure(trace)
        vectorised = memory_access_vectors(cols, 3000)
        oracle = scalar_mav(trace, 3000)
        np.testing.assert_array_equal(vectorised, oracle)

    def test_every_feature_in_unit_interval(self):
        cols = TraceColumns.ensure(small_trace("xz", 12_000))
        mav = memory_access_vectors(cols, 2000)
        assert mav.shape == (6, mav_dim())
        assert (mav >= 0.0).all() and (mav <= 1.0).all()


class TestPcFrequencyVectors:
    def test_rows_are_distributions(self):
        cols = TraceColumns.ensure(small_trace("mcf", 12_000))
        bbv = pc_frequency_vectors(cols, 3000)
        np.testing.assert_allclose(bbv.sum(axis=1), 1.0)

    def test_counts_match_scalar_oracle(self):
        trace = small_trace("perlbench1", 8_000)
        interval = 2000
        cols = TraceColumns.ensure(trace)
        bbv = pc_frequency_vectors(cols, interval)
        pcs = sorted({u.pc for u in trace})
        column = {pc: i for i, pc in enumerate(pcs)}
        for j in range(len(trace) // interval):
            counts = np.zeros(len(pcs))
            for uop in trace[j * interval:(j + 1) * interval]:
                counts[column[uop.pc]] += 1
            np.testing.assert_array_equal(bbv[j], counts / interval)


class TestRegionSignatures:
    def test_shape_and_tail_dropping(self):
        trace = small_trace("mcf", 10_000)
        signatures = region_signatures(trace, 3000)
        assert signatures.shape[0] == num_intervals(len(trace), 3000) == 3

    def test_no_intervals_raises(self):
        with pytest.raises(ValueError):
            region_signatures(small_trace("mcf", 1_000), 3000)
