"""Sampled cells in the result cache: keys and CellSpec validation."""

import dataclasses

import pytest

from repro.core.config import GOLDEN_COVE
from repro.experiments.parallel import CellSpec
from repro.experiments.result_cache import cell_key
from repro.sampling import SamplingPolicy


def spec(**kwargs):
    kwargs.setdefault("sampling", SamplingPolicy(interval_length=5_000))
    return CellSpec(mode="timing", benchmark="mcf", num_uops=40_000,
                    predictor="mascot", config=GOLDEN_COVE, **kwargs)


class TestCellKeySensitivity:
    def test_sampled_and_full_cells_never_collide(self):
        assert cell_key(spec()) != cell_key(spec(sampling=None))

    @pytest.mark.parametrize("knob, value", [
        ("interval_length", 4_000),
        ("max_k", 3),
        ("warmup_intervals", 1),
        ("projection_dims", 5),
        ("seed", 9),
        ("functional_warmup", False),
        ("confidence", 0.9),
        ("min_ci_relative", 0.05),
    ])
    def test_every_policy_knob_changes_the_key(self, knob, value):
        base = SamplingPolicy(interval_length=5_000)
        changed = dataclasses.replace(base, **{knob: value})
        assert getattr(changed, knob) != getattr(base, knob), \
            "fixture drifted: value matches the default"
        assert cell_key(spec(sampling=base)) \
            != cell_key(spec(sampling=changed))

    def test_key_is_stable_for_equal_policies(self):
        assert cell_key(spec()) == cell_key(spec())


class TestCellSpecValidation:
    def test_sampling_must_be_a_policy(self):
        with pytest.raises(ValueError, match="SamplingPolicy"):
            spec(sampling={"interval_length": 5_000})

    def test_sampling_rejects_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            spec(warmup=1_000)

    def test_sampling_rejects_f1_period(self):
        with pytest.raises(ValueError, match="f1_period"):
            spec(f1_period=100)

    def test_sampling_rejects_telemetry(self):
        with pytest.raises(ValueError):
            CellSpec(mode="accuracy", benchmark="mcf", num_uops=40_000,
                     predictor="mascot", telemetry=True,
                     sampling=SamplingPolicy(interval_length=5_000))

    def test_trace_must_cover_two_intervals(self):
        with pytest.raises(ValueError, match="interval"):
            spec(sampling=SamplingPolicy(interval_length=30_000))
