"""Tests for the PHAST baseline."""

import pytest

from repro.predictors.base import ActualOutcome, PredictionKind
from repro.predictors.phast import Phast
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import drive_predictor, small_trace


def load_uop(seq=100, pc=0x400100):
    return MicroOp(seq, pc, OpClass.LOAD, address=0x1000, size=8)


def dep(distance=3, branches_between=0):
    return ActualOutcome(distance=distance, store_seq=1,
                         bypass=BypassClass.DIRECT,
                         branches_between=branches_between)


def nodep():
    return ActualOutcome(distance=0, store_seq=None, bypass=BypassClass.NONE)


class TestStructure:
    def test_size_is_14_5_kib(self):
        assert Phast().storage_kib == pytest.approx(14.5)

    def test_never_predicts_smb(self):
        assert not Phast().supports_smb

    def test_eight_tables(self):
        assert len(Phast().bank) == 8


class TestAllocationPolicy:
    def test_allocation_table_from_branch_count(self):
        """PHAST's signature: context length covers the store->load branch
        count."""
        p = Phast()
        assert p._allocation_table(0) == 0
        assert p._allocation_table(1) == 1   # history 2 covers 1
        assert p._allocation_table(2) == 1
        assert p._allocation_table(3) == 2   # history 4
        assert p._allocation_table(10) == 4  # history 16
        assert p._allocation_table(1000) == 7  # clamped to last

    def test_missed_dep_allocates_at_branch_table(self):
        p = Phast()
        uop = load_uop()
        pred = p.predict(uop)
        assert pred.kind is PredictionKind.NO_DEP
        p.train(uop, pred, dep(branches_between=3))
        assert p.bank[2].occupancy() == 1

    def test_zero_branches_lands_in_pc_table(self):
        """The Fig. 3 pathology: with no branches between store and load,
        PHAST allocates in the PC-only table and cannot use the pre-store
        branch context."""
        p = Phast()
        uop = load_uop()
        p.train(uop, p.predict(uop), dep(branches_between=0))
        assert p.bank[0].occupancy() == 1


class TestPrediction:
    def test_learns_dependence(self):
        p = Phast()
        uop = load_uop()
        p.train(uop, p.predict(uop), dep(distance=5))
        pred = p.predict(uop)
        assert pred.kind is PredictionKind.MDP
        assert pred.distance == 5

    def test_predicts_on_any_tag_hit(self):
        """Usefulness does not gate predictions — the source of PHAST's
        false-dependence problem (Fig. 8)."""
        p = Phast()
        uop = load_uop()
        p.train(uop, p.predict(uop), dep())
        # Drain usefulness with false dependencies.
        for _ in range(20):
            pred = p.predict(uop)
            p.train(uop, pred, nodep())
        # Entry still predicts the dependence.
        assert p.predict(uop).kind is PredictionKind.MDP

    def test_false_dep_only_decays(self):
        p = Phast()
        uop = load_uop()
        p.train(uop, p.predict(uop), dep())
        entry = next(iter(p.bank[0].entries()))[2]
        before = entry.usefulness
        p.train(uop, p.predict(uop), nodep())
        assert entry.usefulness == before - 1
        # Crucially: no new entries were allocated anywhere.
        total = sum(t.occupancy() for t in p.bank.tables)
        assert total == 1

    def test_correct_prediction_strengthens(self):
        p = Phast()
        uop = load_uop()
        p.train(uop, p.predict(uop), dep())
        entry = next(iter(p.bank[0].entries()))[2]
        before = entry.usefulness
        p.train(uop, p.predict(uop), dep())
        assert entry.usefulness == before + 1

    def test_wrong_distance_reallocates(self):
        p = Phast()
        uop = load_uop()
        p.train(uop, p.predict(uop), dep(distance=3, branches_between=5))
        p.train(uop, p.predict(uop), dep(distance=9, branches_between=5))
        assert any(
            e.distance == 9
            for t in p.bank.tables for _, _, e in t.entries()
        )


class TestReplacement:
    def test_protected_set_decrements_lru_victim(self):
        """With every way useful, PHAST ages the LRU way instead of
        evicting."""
        p = Phast(entries_per_table=4)  # 1 set per table
        uop = load_uop()
        keys = p.bank.keys(uop.pc)
        from repro.predictors.phast import PhastEntry
        for w in range(4):
            p.bank[0].write(keys[0].index, w,
                            PhastEntry(tag=w + 100, distance=1,
                                       usefulness=5, lru=w))
        p._allocate(keys, dep(branches_between=0))
        ways = p.bank[0].ways_at(keys[0].index)
        assert sorted(e.usefulness for e in ways) == [4, 5, 5, 5]
        assert all(e.tag >= 100 for e in ways)  # nothing evicted


class TestEndToEnd:
    def test_runs_on_trace(self, perlbench_trace):
        p = Phast()
        loads = drive_predictor(p, perlbench_trace)
        assert loads > 1000

    def test_reset(self, perlbench_trace):
        p = Phast()
        drive_predictor(p, perlbench_trace)
        p.reset()
        assert all(t.occupancy() == 0 for t in p.bank.tables)

    def test_more_false_deps_than_mascot(self):
        """Fig. 8's central comparison."""
        from repro.analysis.accuracy import AccuracyStats, classify
        from repro.predictors.mascot import Mascot

        trace = small_trace("perlbench1", 30_000)

        def false_deps(predictor):
            stats = AccuracyStats()
            for _, pred, actual in drive_predictor(predictor, trace,
                                                   collect=True):
                stats.record(classify(pred, actual))
            return stats.false_dependencies

        assert false_deps(Phast()) > 2 * false_deps(Mascot())
