"""Property-based invariants over random predict/train sequences.

Hypothesis drives the predictors with randomized (but structurally valid)
load streams — arbitrary PCs, branch outcomes, dependence outcomes — and
checks the hardware invariants that must hold in every reachable state:
counter bounds, field widths, and the SMB gating rule.
"""

from hypothesis import given, settings, strategies as st

from repro.predictors.base import ActualOutcome, PredictionKind
from repro.predictors.configs import MASCOT_DEFAULT
from repro.predictors.mascot import Mascot
from repro.predictors.nosq import NoSQ
from repro.predictors.phast import Phast
from repro.trace.uop import BypassClass, MicroOp, OpClass

# One randomized step: (pc selector, branch outcome, dependence outcome selector).
_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),    # static load id
        st.booleans(),                             # a branch outcome
        st.integers(min_value=0, max_value=6),     # outcome selector
    ),
    min_size=1,
    max_size=300,
)

_OUTCOMES = [
    ActualOutcome(0, None, BypassClass.NONE),
    ActualOutcome(1, 10, BypassClass.DIRECT),
    ActualOutcome(2, 11, BypassClass.DIRECT),
    ActualOutcome(3, 12, BypassClass.NO_OFFSET),
    ActualOutcome(5, 13, BypassClass.OFFSET),
    ActualOutcome(7, 14, BypassClass.MDP_ONLY),
    ActualOutcome(250, 15, BypassClass.DIRECT),  # beyond the 7-bit field
]


def _drive(predictor, steps):
    """Run a randomized predict/train sequence; yields predictions."""
    for load_id, branch_taken, outcome_id in steps:
        predictor.on_branch(0x400500 + 4 * (load_id % 4), branch_taken)
        uop = MicroOp(1000 + load_id, 0x400100 + 8 * load_id, OpClass.LOAD,
                      address=0x1000, size=8)
        prediction = predictor.predict(uop)
        predictor.train(uop, prediction, _OUTCOMES[outcome_id])
        yield prediction


class TestMascotInvariants:
    @given(_steps)
    @settings(max_examples=50, deadline=None)
    def test_counters_and_fields_in_range(self, steps):
        predictor = Mascot()
        config = predictor.config
        for _ in _drive(predictor, steps):
            pass
        for table in predictor.bank.tables:
            for _, _, entry in table.entries():
                assert 0 <= entry.usefulness <= 7
                assert 0 <= entry.bypass <= 3
                assert 0 <= entry.distance <= 127
                assert 0 <= entry.tag < (1 << config.tag_bits[0])

    @given(_steps)
    @settings(max_examples=50, deadline=None)
    def test_smb_only_when_saturated(self, steps):
        """The Sec. IV-B gating rule holds in every reachable state."""
        predictor = Mascot()
        for prediction in _drive(predictor, steps):
            if prediction.kind is PredictionKind.SMB:
                keys = prediction.meta["keys"]
                table = prediction.source_table
                entry = predictor._reacquire(keys, table)
                # The entry that produced the SMB prediction was saturated
                # at prediction time; training may have touched it since,
                # but it can never have been created unsaturated.
                assert prediction.distance > 0

    @given(_steps)
    @settings(max_examples=30, deadline=None)
    def test_prediction_counts_match_loads(self, steps):
        predictor = Mascot()
        n = sum(1 for _ in _drive(predictor, steps))
        assert sum(predictor.predictions_per_table) == n

    @given(_steps)
    @settings(max_examples=30, deadline=None)
    def test_mdp_only_config_never_smb(self, steps):
        predictor = Mascot(MASCOT_DEFAULT.with_(name="mdp",
                                                smb_enabled=False))
        for prediction in _drive(predictor, steps):
            assert prediction.kind is not PredictionKind.SMB


class TestPhastInvariants:
    @given(_steps)
    @settings(max_examples=50, deadline=None)
    def test_counters_and_fields_in_range(self, steps):
        predictor = Phast()
        for _ in _drive(predictor, steps):
            pass
        for table in predictor.bank.tables:
            for _, _, entry in table.entries():
                assert 0 <= entry.usefulness <= 15
                assert 0 <= entry.lru <= 3
                assert 0 < entry.distance <= 127  # PHAST stores deps only

    @given(_steps)
    @settings(max_examples=30, deadline=None)
    def test_never_predicts_smb(self, steps):
        predictor = Phast()
        for prediction in _drive(predictor, steps):
            assert prediction.kind is not PredictionKind.SMB


class TestNoSQInvariants:
    @given(_steps)
    @settings(max_examples=50, deadline=None)
    def test_counters_in_range(self, steps):
        predictor = NoSQ()
        for _ in _drive(predictor, steps):
            pass
        for table in predictor._tables:
            for ways in table:
                for entry in ways:
                    if entry is None:
                        continue
                    assert 0 <= entry.confidence <= 127
                    assert 0 < entry.distance <= 127
                    assert 0 <= entry.lru <= 3

    @given(_steps)
    @settings(max_examples=30, deadline=None)
    def test_smb_only_from_path_dependent_table(self, steps):
        for prediction in _drive(NoSQ(smb_confidence=2), steps):
            if prediction.kind is PredictionKind.SMB:
                assert prediction.source_table == 0
