"""Tests for the shared tagged-table machinery."""

import pytest

from repro.predictors.tables import TableBank, TaggedTable
from repro.common.history import GlobalHistory, PathHistory


def make_table(history=8, entries=64, ways=4, tag_bits=12):
    ghist = GlobalHistory(max_bits=256)
    return TaggedTable(1, history, entries, ways, tag_bits, ghist), ghist


class TestTaggedTable:
    def test_geometry(self):
        table, _ = make_table(entries=64, ways=4)
        assert table.num_sets == 16
        assert table.index_bits == 4

    def test_single_set_table(self):
        table, _ = make_table(entries=4, ways=4)
        assert table.num_sets == 1
        assert table.index_bits == 0
        assert table.key(0x400100).index == 0

    def test_non_power_of_two_sets_rejected(self):
        ghist = GlobalHistory(max_bits=64)
        with pytest.raises(ValueError):
            TaggedTable(0, 4, 48, 4, 12, ghist)

    def test_entries_divisible_by_ways(self):
        ghist = GlobalHistory(max_bits=64)
        with pytest.raises(ValueError):
            TaggedTable(0, 4, 63, 4, 12, ghist)

    def test_key_in_range(self):
        table, ghist = make_table()
        for i in range(50):
            ghist.push_conditional(i % 3 == 0)
            key = table.key(0x400000 + 4 * i)
            assert 0 <= key.index < table.num_sets
            assert 0 <= key.tag < (1 << table.tag_bits)

    def test_key_depends_on_history(self):
        table, ghist = make_table(history=8)
        k1 = table.key(0x400100)
        for _ in range(8):
            ghist.push_conditional(True)
        k2 = table.key(0x400100)
        assert k1 != k2

    def test_zero_history_table_ignores_history(self):
        table, ghist = make_table(history=0)
        k1 = table.key(0x400100)
        for _ in range(16):
            ghist.push_conditional(True)
        assert table.key(0x400100) == k1

    def test_write_and_entries(self):
        table, _ = make_table()
        table.write(3, 1, "entry")
        assert list(table.entries()) == [(3, 1, "entry")]
        assert table.occupancy() == 1
        table.write(3, 1, None)
        assert table.occupancy() == 0

    def test_clear(self):
        table, _ = make_table()
        table.write(0, 0, "x")
        table.clear()
        assert table.occupancy() == 0


class TestTableBank:
    def test_construction(self):
        bank = TableBank((0, 2, 4), (64, 64, 64), (12, 12, 12))
        assert len(bank) == 3
        assert bank[2].history_length == 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TableBank((), (), ())
        with pytest.raises(ValueError):
            TableBank((0, 2), (64,), (12, 12))
        with pytest.raises(ValueError):
            TableBank((4, 2), (64, 64), (12, 12))  # decreasing history

    def test_keys_for_all_tables(self):
        bank = TableBank((0, 2, 4), (64, 64, 64), (12, 12, 12))
        keys = bank.keys(0x400100)
        assert len(keys) == 3

    def test_branch_updates_affect_history_tables_only(self):
        bank = TableBank((0, 4), (64, 64), (12, 12))
        before = bank.keys(0x400100)
        bank.on_branch(0x400200, True)
        after = bank.keys(0x400100)
        assert before[0] == after[0]      # zero-history table stable
        assert before[1] != after[1]      # history table moved

    def test_indirect_updates_history(self):
        bank = TableBank((0, 8), (64, 64), (12, 12))
        before = bank.keys(0x400100)
        bank.on_indirect(0x400200, 0x500000)
        assert bank.keys(0x400100)[1] != before[1]

    def test_identical_history_tables_get_distinct_indices(self):
        """Two tables with the same history length must not mirror each
        other (the table number is mixed into the index)."""
        bank = TableBank((4, 4), (64, 64), (12, 12))
        bank.on_branch(0x400200, True)
        k0, k1 = bank.keys(0x400100)
        assert k0 != k1

    def test_clear(self):
        bank = TableBank((0, 2), (64, 64), (12, 12))
        bank[0].write(0, 0, "x")
        bank.on_branch(0x400200, True)
        bank.clear()
        assert bank[0].occupancy() == 0
        assert bank.ghist.as_int(8) == 0
