"""Tests for the IDist + Store Sets split design (Sec. II-B.2)."""

import pytest

from repro.predictors.base import ActualOutcome, PredictionKind
from repro.predictors.idist import IDIST_HISTORY_LENGTHS, IDistStoreSets
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import drive_predictor


def load(seq=100, pc=0x400100):
    return MicroOp(seq, pc, OpClass.LOAD, address=0x1000, size=8)


def store(seq, pc=0x400200):
    return MicroOp(seq, pc, OpClass.STORE, address=0x1000, size=8)


def dep(distance=3, bypass=BypassClass.DIRECT, store_seq=90, store_pc=0x400200):
    return ActualOutcome(distance=distance, store_seq=store_seq,
                         bypass=bypass, store_pc=store_pc)


def nodep():
    return ActualOutcome(distance=0, store_seq=None, bypass=BypassClass.NONE)


class TestStructure:
    def test_published_history_series(self):
        """Sec. II-B.2: 2, 5, 11, 27 and 64 bits of history."""
        assert IDIST_HISTORY_LENGTHS == (2, 5, 11, 27, 64)
        p = IDistStoreSets()
        assert p.history_lengths == (2, 5, 11, 27, 64)

    def test_includes_companion_store_sets(self):
        p = IDistStoreSets()
        assert p.store_sets is not None
        # Split designs pay for two structures.
        assert p.storage_bits > p.store_sets.storage_bits

    def test_supports_smb(self):
        assert IDistStoreSets().supports_smb


class TestConfidenceGating:
    def test_idist_silent_until_fully_confident(self):
        """'IDist only makes predictions when it is highly confident.'"""
        p = IDistStoreSets()
        uop = load()
        p.train(uop, p.predict(uop), dep())
        # Confidence 1 of 7: no SMB yet; MDP comes from Store Sets or not
        # at all.
        assert p.predict(uop).kind is not PredictionKind.SMB

    def test_smb_after_confidence_builds(self):
        p = IDistStoreSets()
        uop = load()
        for _ in range(10):
            p.train(uop, p.predict(uop), dep())
        assert p.predict(uop).kind is PredictionKind.SMB

    def test_non_bypassable_never_smb(self):
        p = IDistStoreSets()
        uop = load()
        for _ in range(12):
            p.train(uop, p.predict(uop), dep(bypass=BypassClass.MDP_ONLY))
        assert p.predict(uop).kind is not PredictionKind.SMB

    def test_false_dependence_resets_confidence(self):
        p = IDistStoreSets()
        uop = load()
        for _ in range(10):
            p.train(uop, p.predict(uop), dep())
        assert p.predict(uop).kind is PredictionKind.SMB
        p.train(uop, p.predict(uop), nodep())
        assert p.predict(uop).kind is not PredictionKind.SMB


class TestStoreSetsFallback:
    def test_mdp_comes_from_store_sets(self):
        """When IDist is silent, the companion provides the MDP decision."""
        p = IDistStoreSets()
        uop = load()
        # One violation trains the store set.
        pred = p.predict(uop)
        p.train(uop, pred, dep(store_seq=5))
        p.on_store(store(50))
        pred = p.predict(load(51))
        assert pred.kind is PredictionKind.MDP
        assert pred.store_seq == 50


class TestEndToEnd:
    def test_runs_on_trace(self, perlbench_trace):
        p = IDistStoreSets()
        assert drive_predictor(p, perlbench_trace) > 1000

    def test_reset(self, perlbench_trace):
        p = IDistStoreSets()
        drive_predictor(p, perlbench_trace)
        p.reset()
        assert p.predict(load()).kind is PredictionKind.NO_DEP

    def test_smb_more_conservative_than_mascot(self):
        """The split design bypasses fewer loads than MASCOT — the missed
        opportunities the paper's unification recovers."""
        from repro.predictors.mascot import Mascot
        from tests.conftest import small_trace

        trace = small_trace("perlbench1", 30_000)

        def smb_count(p):
            return sum(
                1 for _, pred, _ in drive_predictor(p, trace, collect=True)
                if pred.kind is PredictionKind.SMB
            )

        assert smb_count(IDistStoreSets()) < smb_count(Mascot())
