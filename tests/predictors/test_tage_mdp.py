"""Tests for the TAGE-MDP historical baseline (Sec. II-A)."""

import pytest

from repro.predictors.base import ActualOutcome, PredictionKind
from repro.predictors.tage_mdp import TageMdp
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import drive_predictor


def load(seq=100, pc=0x400100):
    return MicroOp(seq, pc, OpClass.LOAD, address=0x1000, size=8)


def dep(distance=3):
    return ActualOutcome(distance=distance, store_seq=1,
                         bypass=BypassClass.DIRECT)


def nodep():
    return ActualOutcome(distance=0, store_seq=None, bypass=BypassClass.NONE)


class TestBasics:
    def test_cold_predicts_nodep(self):
        assert TageMdp().predict(load()).kind is PredictionKind.NO_DEP

    def test_never_smb(self):
        assert not TageMdp().supports_smb

    def test_learns_short_distance(self):
        p = TageMdp()
        uop = load()
        p.train(uop, p.predict(uop), dep(3))
        pred = p.predict(uop)
        assert pred.kind is PredictionKind.MDP
        assert pred.distance == 3

    def test_storage_accounting(self):
        # 8 tables x 512 entries x (16 tag + 3 distance + 1 u) = 10 KiB.
        assert TageMdp().storage_kib == pytest.approx(10.0)


class TestThreeBitDistanceLimit:
    """The defining weakness vs PHAST/MASCOT: distances above 7 are
    unrepresentable."""

    def test_long_distance_never_learned(self):
        p = TageMdp()
        uop = load()
        for _ in range(10):
            pred = p.predict(uop)
            p.train(uop, pred, dep(distance=20))
        assert p.predict(uop).kind is PredictionKind.NO_DEP

    def test_boundary_distance_seven(self):
        p = TageMdp()
        uop = load()
        p.train(uop, p.predict(uop), dep(distance=7))
        assert p.predict(uop).distance == 7


class TestSingleUsefulnessBit:
    def test_one_false_dep_silences(self):
        """Sec. II-A: u=0 disables prediction — one strike is enough."""
        p = TageMdp()
        uop = load()
        p.train(uop, p.predict(uop), dep(3))
        assert p.predict(uop).kind is PredictionKind.MDP
        pred = p.predict(uop)
        p.train(uop, pred, ActualOutcome(5, 2, BypassClass.DIRECT))
        # Entry silenced (and a new one allocated for distance 5).
        entries = [
            e for t in p.bank.tables for _, _, e in t.entries()
            if e.distance == 3
        ]
        assert all(not e.useful for e in entries)

    def test_correct_prediction_revives(self):
        p = TageMdp()
        uop = load()
        p.train(uop, p.predict(uop), dep(3))
        # Silence via wrong distance, then the distance-5 entry takes over
        # and builds usefulness on its own.
        p.train(uop, p.predict(uop), dep(5))
        pred = p.predict(uop)
        assert pred.distance == 5


class TestEndToEnd:
    def test_runs_on_trace(self, perlbench_trace):
        p = TageMdp()
        assert drive_predictor(p, perlbench_trace) > 1000

    def test_worse_than_mascot_mdp(self):
        """The 3-bit distance and single u bit must cost accuracy relative
        to MASCOT (7-bit distance, dual counters, ND entries)."""
        from repro.analysis.accuracy import AccuracyStats, classify
        from repro.predictors.configs import MASCOT_DEFAULT
        from repro.predictors.mascot import Mascot
        from tests.conftest import small_trace

        trace = small_trace("perlbench1", 30_000)

        def mispredictions(p):
            stats = AccuracyStats()
            for _, pred, actual in drive_predictor(p, trace, collect=True):
                stats.record(classify(pred, actual))
            return stats.mispredictions

        mascot = Mascot(MASCOT_DEFAULT.with_(name="m", smb_enabled=False))
        assert mispredictions(TageMdp()) > mispredictions(mascot)
