"""Tests for Store Sets' store-store serialization and footprint scaling."""

import pytest

from repro.predictors.base import ActualOutcome
from repro.predictors.store_sets import StoreSets
from repro.trace.uop import BypassClass, MicroOp, OpClass


def load(seq, pc=0x400100):
    return MicroOp(seq, pc, OpClass.LOAD, address=0x1000, size=8)


def store(seq, pc=0x400200):
    return MicroOp(seq, pc, OpClass.STORE, address=0x1000, size=8)


def violation(store_seq, store_pc=0x400200):
    return ActualOutcome(distance=1, store_seq=store_seq,
                         bypass=BypassClass.DIRECT, store_pc=store_pc)


class TestStoreSerialization:
    def test_unassigned_store_unconstrained(self):
        ss = StoreSets(clear_interval=0)
        assert ss.on_store(store(5)) is None

    def test_second_store_in_set_serialises(self):
        """Two stores merged into one set order behind each other via the
        LFST (Chrysos & Emer)."""
        ss = StoreSets(clear_interval=0, footprint_scale=1)
        # Create a set containing two static stores via two violations.
        la = load(10, pc=0x400100)
        ss.train(la, ss.predict(la), violation(5, store_pc=0x400200))
        ss.train(la, ss.predict(la), violation(6, store_pc=0x400300))
        first = ss.on_store(store(20, pc=0x400200))
        second = ss.on_store(store(21, pc=0x400300))
        assert second == 20  # must issue behind the set's previous store

    def test_stale_constraint_dropped(self):
        ss = StoreSets(clear_interval=0, footprint_scale=1, instr_window=50)
        la = load(10)
        ss.train(la, ss.predict(la), violation(5))
        ss.on_store(store(20))
        assert ss.on_store(store(500)) is None  # previous store drained


class TestFootprintScale:
    def test_scale_one_separates_distinct_pcs(self):
        ss = StoreSets(clear_interval=0, footprint_scale=1)
        # With the literal 8K SSIT, two nearby PCs almost surely differ.
        assert ss._ssit_index(0x400100) != ss._ssit_index(0x400480)

    def test_larger_scale_increases_collisions(self):
        pcs = [0x400000 + 4 * i for i in range(200)]
        literal = StoreSets(footprint_scale=1)
        scaled = StoreSets(footprint_scale=192)
        literal_slots = {literal._ssit_index(pc) for pc in pcs}
        scaled_slots = {scaled._ssit_index(pc) for pc in pcs}
        assert len(scaled_slots) < len(literal_slots)
        assert len(scaled_slots) <= scaled._effective_ssit

    def test_storage_unaffected_by_scale(self):
        """The scale models workload pressure, not hardware size."""
        assert (StoreSets(footprint_scale=1).storage_bits
                == StoreSets(footprint_scale=192).storage_bits)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            StoreSets(footprint_scale=0)
