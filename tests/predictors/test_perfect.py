"""Tests for the oracle predictors."""

from repro.predictors.base import PredictionKind
from repro.predictors.perfect import PerfectMDP, PerfectMDPSMB
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import drive_predictor, small_trace


def dep_load(bypass=BypassClass.DIRECT, distance=4, store_seq=42):
    return MicroOp(100, 0x400100, OpClass.LOAD, address=0x1000, size=8,
                   store_distance=distance, dep_store_seq=store_seq,
                   bypass=bypass)


def indep_load():
    return MicroOp(100, 0x400100, OpClass.LOAD, address=0x1000, size=8)


class TestPerfectMDP:
    def test_dependent_load(self):
        pred = PerfectMDP().predict(dep_load())
        assert pred.kind is PredictionKind.MDP
        assert pred.distance == 4
        assert pred.store_seq == 42

    def test_independent_load(self):
        assert PerfectMDP().predict(indep_load()).kind is PredictionKind.NO_DEP

    def test_never_smb(self):
        p = PerfectMDP()
        assert not p.supports_smb
        assert p.predict(dep_load()).kind is not PredictionKind.SMB

    def test_marks_conservative(self):
        """Sec. VI-A: the oracle stalls loads one extra cycle."""
        pred = PerfectMDP().predict(dep_load())
        assert pred.meta["conservative"] is True

    def test_is_always_correct(self, perlbench_trace):
        from repro.analysis.accuracy import AccuracyStats, classify
        stats = AccuracyStats()
        for _, pred, actual in drive_predictor(PerfectMDP(),
                                               perlbench_trace,
                                               collect=True):
            stats.record(classify(pred, actual))
        assert stats.mispredictions == 0


class TestPerfectMDPSMB:
    def test_bypassable_classes(self):
        p = PerfectMDPSMB()
        assert p.predict(dep_load(BypassClass.DIRECT)).kind is PredictionKind.SMB
        assert p.predict(dep_load(BypassClass.NO_OFFSET)).kind is PredictionKind.SMB

    def test_offset_requires_extension(self):
        assert (PerfectMDPSMB().predict(dep_load(BypassClass.OFFSET)).kind
                is PredictionKind.MDP)
        assert (PerfectMDPSMB(offset_bypass=True)
                .predict(dep_load(BypassClass.OFFSET)).kind
                is PredictionKind.SMB)

    def test_partial_overlap_is_mdp(self):
        pred = PerfectMDPSMB().predict(dep_load(BypassClass.MDP_ONLY))
        assert pred.kind is PredictionKind.MDP

    def test_independent_load(self):
        assert (PerfectMDPSMB().predict(indep_load()).kind
                is PredictionKind.NO_DEP)

    def test_supports_smb(self):
        assert PerfectMDPSMB().supports_smb

    def test_never_mispredicts(self):
        from repro.analysis.accuracy import AccuracyStats, classify
        trace = small_trace("lbm", 10_000)
        stats = AccuracyStats()
        for _, pred, actual in drive_predictor(PerfectMDPSMB(), trace,
                                               collect=True):
            stats.record(classify(pred, actual))
        assert stats.mispredictions == 0
