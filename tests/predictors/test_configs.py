"""Tests for MASCOT configurations and the sizing module (Table II)."""

import pytest

from repro.predictors.configs import (
    MASCOT_DEFAULT,
    MASCOT_OPT,
    MascotConfig,
    mascot_opt_reduced_tags,
)
from repro.predictors.sizing import (
    mascot_sizing,
    nosq_sizing,
    phast_sizing,
    store_sets_sizing,
    table2_rows,
)


class TestDefaultConfig:
    def test_paper_geometry(self):
        """Sec. IV-B: 8 tables, [0,2,4,8,16,32,64,128] history, 512 entries,
        16-bit tags, 3-bit usefulness, 2-bit bypass, 7-bit distance."""
        c = MASCOT_DEFAULT
        assert c.num_tables == 8
        assert c.history_lengths == (0, 2, 4, 8, 16, 32, 64, 128)
        assert c.table_entries == (512,) * 8
        assert c.tag_bits == (16,) * 8
        assert c.distance_bits == 7
        assert c.usefulness_bits == 3
        assert c.bypass_bits == 2

    def test_entry_is_28_bits(self):
        """Fig. 6: 28 bits per entry."""
        assert MASCOT_DEFAULT.entry_bits == (28,) * 8

    def test_total_size_14_kib(self):
        assert MASCOT_DEFAULT.storage_kib == pytest.approx(14.0)

    def test_allocation_usefulness_values(self):
        """Sec. IV-C: dependent entries 6, non-dependent entries 2."""
        assert MASCOT_DEFAULT.alloc_usefulness_dep == 6
        assert MASCOT_DEFAULT.alloc_usefulness_nondep == 2


class TestOptConfig:
    def test_paper_table_sizes(self):
        """Sec. VI-D's resized tables and compensating tags."""
        assert MASCOT_OPT.table_entries == (1024, 512, 512, 512, 256, 256,
                                            256, 128)
        assert MASCOT_OPT.tag_bits == (15, 16, 16, 16, 17, 17, 17, 18)

    def test_16_percent_smaller(self):
        reduction = 1 - MASCOT_OPT.storage_bits / MASCOT_DEFAULT.storage_bits
        assert reduction == pytest.approx(0.16, abs=0.03)

    def test_tag4_reaches_10_1_kib(self):
        """Fig. 15: MASCOT-OPT with tags reduced by 4 bits needs 10.1 KiB."""
        assert mascot_opt_reduced_tags(4).storage_kib == pytest.approx(
            10.1, abs=0.1
        )

    def test_tag_reduction_validation(self):
        with pytest.raises(ValueError):
            mascot_opt_reduced_tags(-1)
        with pytest.raises(ValueError):
            mascot_opt_reduced_tags(20)


class TestValidation:
    def test_mismatched_tuples(self):
        with pytest.raises(ValueError):
            MascotConfig(table_entries=(512,) * 7)

    def test_decreasing_histories(self):
        with pytest.raises(ValueError):
            MascotConfig(history_lengths=(0, 4, 2, 8, 16, 32, 64, 128))

    def test_entries_divisible_by_ways(self):
        with pytest.raises(ValueError):
            MascotConfig(table_entries=(510,) * 8)

    def test_alloc_usefulness_in_range(self):
        with pytest.raises(ValueError):
            MascotConfig(alloc_usefulness_dep=8)  # 3-bit counter
        with pytest.raises(ValueError):
            MascotConfig(alloc_usefulness_nondep=0)

    def test_with_derives_copy(self):
        derived = MASCOT_DEFAULT.with_(name="x", smb_enabled=False)
        assert derived.name == "x"
        assert not derived.smb_enabled
        assert MASCOT_DEFAULT.smb_enabled  # original untouched


class TestTable2Sizes:
    """The storage budgets the paper's Table II reports."""

    def test_store_sets_18_5_kb(self):
        total = sum(s.kib for s in store_sets_sizing())
        assert total == pytest.approx(18.5, abs=0.01)

    def test_nosq_19_kb(self):
        assert nosq_sizing().kib == pytest.approx(19.0, abs=0.01)

    def test_phast_14_5_kb(self):
        assert phast_sizing().kib == pytest.approx(14.5, abs=0.01)

    def test_mascot_14_kb(self):
        assert mascot_sizing(MASCOT_DEFAULT).kib == pytest.approx(14.0,
                                                                  abs=0.01)

    def test_mascot_opt_sizing_exact(self):
        """Per-table tag widths must be accounted exactly, not averaged."""
        sizing = mascot_sizing(MASCOT_OPT)
        assert sizing.total_bits == MASCOT_OPT.storage_bits

    def test_table2_rows_complete(self):
        names = [r.name for r in table2_rows()]
        assert "store-sets/SSIT" in names
        assert "nosq" in names
        assert "phast" in names
        assert "mascot" in names
        assert "mascot-opt" in names

    def test_mascot_smaller_than_phast(self):
        """The paper's headline: both MDP and SMB in less space."""
        assert mascot_sizing().kib < phast_sizing().kib
        assert mascot_sizing().kib < nosq_sizing().kib
