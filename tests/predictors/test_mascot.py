"""Tests for the MASCOT predictor: structure, update rules, allocation."""

import pytest

from repro.predictors.base import ActualOutcome, PredictionKind
from repro.predictors.configs import MASCOT_DEFAULT, MascotConfig
from repro.predictors.mascot import Mascot, MascotEntry
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import drive_predictor, small_trace


def load_uop(seq=100, pc=0x400100):
    return MicroOp(seq, pc, OpClass.LOAD, address=0x1000, size=8)


def outcome_dep(distance=3, bypass=BypassClass.DIRECT, store_seq=90):
    return ActualOutcome(distance=distance, store_seq=store_seq,
                         bypass=bypass)


def outcome_nodep():
    return ActualOutcome(distance=0, store_seq=None, bypass=BypassClass.NONE)


class TestStructure:
    def test_default_configuration(self):
        m = Mascot()
        assert len(m.bank) == 8
        assert m.bank.history_lengths == (0, 2, 4, 8, 16, 32, 64, 128)
        assert all(t.num_entries == 512 for t in m.bank.tables)
        assert all(t.ways == 4 for t in m.bank.tables)

    def test_size_is_14_kib(self):
        assert Mascot().storage_kib == pytest.approx(14.0)

    def test_supports_smb_by_config(self):
        assert Mascot().supports_smb
        assert not Mascot(
            MASCOT_DEFAULT.with_(name="mdp", smb_enabled=False)
        ).supports_smb


class TestBasePrediction:
    def test_cold_predicts_no_dependence(self):
        m = Mascot()
        p = m.predict(load_uop())
        assert p.kind is PredictionKind.NO_DEP
        assert p.source_table is None

    def test_base_counted_in_table_stats(self):
        m = Mascot()
        m.predict(load_uop())
        assert m.predictions_per_table[-1] == 1


class TestAllocationOnMiss:
    def test_base_mispredict_allocates_in_table_zero(self):
        """Sec. IV-C: base mispredict -> dependent entry in N0, useful 6."""
        m = Mascot()
        uop = load_uop()
        p = m.predict(uop)
        m.train(uop, p, outcome_dep(distance=3))
        assert m.allocations_dep == 1
        entries = list(m.bank[0].entries())
        assert len(entries) == 1
        entry = entries[0][2]
        assert entry.distance == 3
        assert entry.usefulness == MASCOT_DEFAULT.alloc_usefulness_dep

    def test_learns_unconditional_dependence(self):
        m = Mascot()
        uop = load_uop()
        p = m.predict(uop)
        m.train(uop, p, outcome_dep(distance=3))
        p = m.predict(uop)
        assert p.kind in (PredictionKind.MDP, PredictionKind.SMB)
        assert p.distance == 3

    def test_bypass_counter_starts_at_one_for_bypassable(self):
        m = Mascot()
        uop = load_uop()
        m.train(uop, m.predict(uop), outcome_dep(bypass=BypassClass.DIRECT))
        entry = next(iter(m.bank[0].entries()))[2]
        assert entry.bypass == 1

    def test_bypass_counter_starts_at_zero_for_partial(self):
        m = Mascot()
        uop = load_uop()
        m.train(uop, m.predict(uop),
                outcome_dep(bypass=BypassClass.MDP_ONLY))
        entry = next(iter(m.bank[0].entries()))[2]
        assert entry.bypass == 0

    def test_distance_capped_at_127(self):
        m = Mascot()
        uop = load_uop()
        m.train(uop, m.predict(uop),
                outcome_dep(distance=500, store_seq=1))
        entry = next(iter(m.bank[0].entries()))[2]
        assert entry.distance == 127


class TestUpdateRules:
    """Sec. IV-B's four update rules, exercised directly."""

    def _train_once(self, m, actual):
        uop = load_uop()
        p = m.predict(uop)
        m.train(uop, p, actual)
        return p

    def test_correct_mdp_increments_usefulness(self):
        m = Mascot()
        self._train_once(m, outcome_dep())      # allocate (useful 6)
        self._train_once(m, outcome_dep())      # correct -> 7
        entry = next(iter(m.bank[0].entries()))[2]
        assert entry.usefulness == 7

    def test_correct_bypass_increments_bypass(self):
        m = Mascot()
        self._train_once(m, outcome_dep())      # allocate, bypass 1
        self._train_once(m, outcome_dep())      # bypass 2
        entry = next(iter(m.bank[0].entries()))[2]
        assert entry.bypass == 2

    def test_false_dependence_decrements_usefulness(self):
        m = Mascot()
        self._train_once(m, outcome_dep())      # allocate (useful 6)
        self._train_once(m, outcome_nodep())    # false dep -> 5
        entry = next(
            e for _, _, e in m.bank[0].entries() if e.distance > 0
        )
        assert entry.usefulness == 5

    def test_nonbypassable_instance_resets_bypass(self):
        m = Mascot()
        self._train_once(m, outcome_dep())  # bypass 1
        self._train_once(m, outcome_dep(bypass=BypassClass.MDP_ONLY))
        entry = next(iter(m.bank[0].entries()))[2]
        assert entry.bypass == 0

    def test_smb_needs_both_counters_saturated(self):
        m = Mascot()
        uop = load_uop()
        # Train until both counters saturate (useful 6->7, bypass 1->3).
        for _ in range(5):
            p = m.predict(uop)
            m.train(uop, p, outcome_dep())
        p = m.predict(uop)
        assert p.kind is PredictionKind.SMB

    def test_mdp_only_before_saturation(self):
        m = Mascot()
        uop = load_uop()
        p = m.predict(uop)
        m.train(uop, p, outcome_dep())
        p = m.predict(uop)
        assert p.kind is PredictionKind.MDP  # bypass counter only 1

    def test_smb_disabled_config_never_predicts_smb(self):
        m = Mascot(MASCOT_DEFAULT.with_(name="mdp", smb_enabled=False))
        uop = load_uop()
        for _ in range(8):
            p = m.predict(uop)
            m.train(uop, p, outcome_dep())
        assert m.predict(uop).kind is PredictionKind.MDP

    def test_offset_bypass_extension(self):
        base = Mascot()
        extended = Mascot(MASCOT_DEFAULT.with_(name="ext",
                                               offset_bypass=True))
        uop = load_uop()
        for m in (base, extended):
            for _ in range(8):
                p = m.predict(uop)
                m.train(uop, p, outcome_dep(bypass=BypassClass.OFFSET))
        assert base.predict(uop).kind is PredictionKind.MDP
        assert extended.predict(uop).kind is PredictionKind.SMB


class TestNonDependenceAllocation:
    """The key MASCOT innovation (Secs. III, IV-D)."""

    def test_false_dep_allocates_nondep_in_next_table(self):
        m = Mascot()
        uop = load_uop()
        p = m.predict(uop)
        m.train(uop, p, outcome_dep())       # dep entry in N0
        p = m.predict(uop)
        assert p.source_table == 0
        m.train(uop, p, outcome_nodep())     # false dep -> ND entry in N1
        assert m.allocations_nondep == 1
        nd_entries = [e for _, _, e in m.bank[1].entries()
                      if e.is_nondependence]
        assert len(nd_entries) == 1
        assert (nd_entries[0].usefulness
                == MASCOT_DEFAULT.alloc_usefulness_nondep)

    def test_nondep_entry_overrides_with_longer_history(self):
        """After the ND allocation, the same context predicts no-dep."""
        m = Mascot()
        uop = load_uop()
        p = m.predict(uop)
        m.train(uop, p, outcome_dep())
        p = m.predict(uop)
        m.train(uop, p, outcome_nodep())
        # History unchanged, so the ND entry (longer history) wins now.
        p = m.predict(uop)
        assert p.kind is PredictionKind.NO_DEP
        assert p.source_table == 1

    def test_ablation_does_not_allocate_nondep(self):
        m = Mascot(MASCOT_DEFAULT.with_(name="no-nd",
                                        allocate_nondependencies=False))
        uop = load_uop()
        p = m.predict(uop)
        m.train(uop, p, outcome_dep())
        p = m.predict(uop)
        m.train(uop, p, outcome_nodep())
        assert m.allocations_nondep == 0
        # Still predicting the (false) dependence, only weaker.
        assert m.predict(uop).kind is PredictionKind.MDP

    def test_correct_nondep_strengthens_nd_entry(self):
        m = Mascot()
        uop = load_uop()
        m.train(uop, m.predict(uop), outcome_dep())
        m.train(uop, m.predict(uop), outcome_nodep())  # ND allocated, u=2
        m.train(uop, m.predict(uop), outcome_nodep())  # correct -> u=3
        nd = next(e for _, _, e in m.bank[1].entries()
                  if e.is_nondependence)
        assert nd.usefulness == 3

    def test_nd_mispredict_allocates_dep_higher(self):
        """Fig. 3 step (3): an ND entry that mispredicts creates a
        dependence entry in an even higher-context table."""
        m = Mascot()
        uop = load_uop()
        m.train(uop, m.predict(uop), outcome_dep())    # dep in N0
        m.train(uop, m.predict(uop), outcome_nodep())  # ND in N1
        p = m.predict(uop)
        assert p.source_table == 1
        m.train(uop, p, outcome_dep())                 # dep in N2
        dep_in_n2 = [e for _, _, e in m.bank[2].entries()
                     if e.distance == 3]
        assert dep_in_n2


class TestWrongStoreConflict:
    def test_wrong_distance_allocates_next_table(self):
        m = Mascot()
        uop = load_uop()
        m.train(uop, m.predict(uop), outcome_dep(distance=3))
        p = m.predict(uop)
        assert p.distance == 3
        m.train(uop, p, outcome_dep(distance=5))
        # Correct distance learned with more context.
        entries_n1 = [e for _, _, e in m.bank[1].entries()]
        assert any(e.distance == 5 for e in entries_n1)

    def test_wrong_distance_decrements_source(self):
        m = Mascot()
        uop = load_uop()
        m.train(uop, m.predict(uop), outcome_dep(distance=3))
        m.train(uop, m.predict(uop), outcome_dep(distance=5))
        entry_n0 = next(iter(m.bank[0].entries()))[2]
        assert entry_n0.usefulness == 5

    def test_smb_wrong_store_resets_bypass(self):
        m = Mascot()
        uop = load_uop()
        for _ in range(6):
            m.train(uop, m.predict(uop), outcome_dep(distance=3))
        p = m.predict(uop)
        assert p.kind is PredictionKind.SMB
        m.train(uop, p, outcome_dep(distance=9))
        entry_n0 = next(
            e for _, _, e in m.bank[0].entries() if e.distance == 3
        )
        assert entry_n0.bypass == 0


class TestTryAgainAllocation:
    def test_failed_set_decrements_all_ways(self):
        """Sec. IV-C: when the first target set has no victim, all four of
        its ways are decremented."""
        config = MASCOT_DEFAULT.with_(name="tiny",
                                      table_entries=(4,) * 8)  # 1 set/table
        m = Mascot(config)
        keys = m.bank.keys(0x400100)
        # Fill table 0's only set with protected entries.
        for w in range(4):
            m.bank[0].write(keys[0].index, w,
                            MascotEntry(tag=w + 1, distance=2,
                                        usefulness=6, bypass=0))
        m._allocate(keys, start=0, distance=7, bypassable=True)
        ways = m.bank[0].ways_at(keys[0].index)
        assert all(e.usefulness == 5 for e in ways)
        # And the allocation went to a later table instead.
        assert any(
            e.distance == 7
            for t in range(1, 8) for _, _, e in m.bank[t].entries()
        )
        assert m.allocation_failures == 1

    def test_only_first_target_set_decremented(self):
        config = MASCOT_DEFAULT.with_(name="tiny", table_entries=(4,) * 8)
        m = Mascot(config)
        keys = m.bank.keys(0x400100)
        for t in (0, 1):
            for w in range(4):
                m.bank[t].write(keys[t].index, w,
                                MascotEntry(tag=w + 1, distance=2,
                                            usefulness=6, bypass=0))
        m._allocate(keys, start=0, distance=7, bypassable=False)
        assert all(e.usefulness == 5
                   for e in m.bank[0].ways_at(keys[0].index))
        assert all(e.usefulness == 6
                   for e in m.bank[1].ways_at(keys[1].index))

    def test_allocation_prefers_zero_usefulness_victim(self):
        m = Mascot()
        keys = m.bank.keys(0x400100)
        m.bank[0].write(keys[0].index, 0,
                        MascotEntry(tag=1, distance=2, usefulness=0,
                                    bypass=0))
        m.bank[0].write(keys[0].index, 1,
                        MascotEntry(tag=2, distance=2, usefulness=6,
                                    bypass=0))
        table = m._allocate(keys, start=0, distance=9, bypassable=False)
        assert table == 0
        assert m.bank[0].ways_at(keys[0].index)[0].distance == 9

    def test_start_clamped_to_last_table(self):
        m = Mascot()
        keys = m.bank.keys(0x400100)
        table = m._allocate(keys, start=99, distance=4, bypassable=False)
        assert table == len(m.bank) - 1


class TestHistorySensitivity:
    def test_prediction_depends_on_history(self):
        """The same PC with different branch history can predict
        differently — the mechanism of Fig. 3."""
        m = Mascot()
        uop = load_uop()

        def with_history(bits):
            m2 = Mascot()
            for b in bits:
                m2.on_branch(0x400000, b)
            return m2

        # Train context A (taken) as dependent.
        m_taken = with_history([True] * 8)
        for _ in range(3):
            p = m_taken.predict(uop)
            m_taken.train(uop, p, outcome_dep())
        keys_taken = m_taken.bank.keys(uop.pc)

        m_not = with_history([False] * 8)
        keys_not = m_not.bank.keys(uop.pc)
        # The higher-context tables must index/tag differently.
        assert any(
            keys_taken[t] != keys_not[t] for t in range(1, 8)
        )


class TestEndToEnd:
    def test_learns_synthetic_workload(self, perlbench_trace):
        m = Mascot()
        loads = drive_predictor(m, perlbench_trace)
        assert loads > 1000
        # The predictor must have used non-base tables substantially.
        tagged = sum(m.predictions_per_table[:-1])
        assert tagged > loads * 0.1

    def test_reset_clears_state(self, perlbench_trace):
        m = Mascot()
        drive_predictor(m, perlbench_trace)
        m.reset()
        assert sum(m.predictions_per_table) == 0
        assert all(t.occupancy() == 0 for t in m.bank.tables)
        assert m.predict(load_uop()).kind is PredictionKind.NO_DEP

    def test_beats_ablation_on_false_dependencies(self):
        """Sec. VI-B: without ND allocation, false dependencies explode."""
        from repro.analysis.accuracy import AccuracyStats, classify

        trace = small_trace("perlbench1", 30_000)

        def false_deps(m):
            stats = AccuracyStats()
            for uop, p, a in drive_predictor(m, trace, collect=True):
                stats.record(classify(p, a))
            return stats.false_dependencies

        mascot_fd = false_deps(Mascot())
        ablation_fd = false_deps(
            Mascot(MASCOT_DEFAULT.with_(name="no-nd",
                                        allocate_nondependencies=False))
        )
        assert ablation_fd > 3 * mascot_fd
