"""Tests for the NoSQ-style MDP+SMB baseline."""

import pytest

from repro.predictors.base import ActualOutcome, PredictionKind
from repro.predictors.nosq import NoSQ
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import drive_predictor


def load(seq=100, pc=0x400100):
    return MicroOp(seq, pc, OpClass.LOAD, address=0x1000, size=8)


def dep(distance=3, bypass=BypassClass.DIRECT):
    return ActualOutcome(distance=distance, store_seq=1, bypass=bypass)


def nodep():
    return ActualOutcome(distance=0, store_seq=None, bypass=BypassClass.NONE)


class TestStructure:
    def test_size_is_19_kib(self):
        assert NoSQ().storage_kib == pytest.approx(19.0)

    def test_supports_smb(self):
        assert NoSQ().supports_smb

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            NoSQ(entries_per_table=2047)


class TestPrediction:
    def test_cold_speculates(self):
        """Sec. V: 'if no prediction is found, the load is allowed to
        execute speculatively'."""
        assert NoSQ().predict(load()).kind is PredictionKind.NO_DEP

    def test_learns_dependence_in_both_tables(self):
        n = NoSQ()
        uop = load()
        n.train(uop, n.predict(uop), dep())
        pred = n.predict(uop)
        assert pred.predicts_dependence
        assert pred.distance == 3

    def test_path_dependent_table_preferred(self):
        n = NoSQ()
        uop = load()
        n.train(uop, n.predict(uop), dep())
        assert n.predict(uop).source_table == 0

    def test_smb_requires_high_confidence(self):
        n = NoSQ(smb_confidence=4)
        uop = load()
        n.train(uop, n.predict(uop), dep())
        assert n.predict(uop).kind is PredictionKind.MDP
        for _ in range(5):
            n.train(uop, n.predict(uop), dep())
        assert n.predict(uop).kind is PredictionKind.SMB

    def test_path_independent_never_smb(self):
        """Even at max confidence, table-1 predictions stay MDP."""
        n = NoSQ(smb_confidence=2)
        uop = load()
        for _ in range(8):
            n.train(uop, n.predict(uop), dep())
        # Shift global history so the path-dependent lookup misses.
        for i in range(32):
            n.on_branch(0x400000 + 2 * i, i % 2 == 0)
        pred = n.predict(uop)
        assert pred.source_table == 1
        assert pred.kind is PredictionKind.MDP

    def test_history_changes_path_dependent_slot(self):
        n = NoSQ()
        uop = load()
        k1 = n._keys(uop.pc)[0]
        n.on_branch(0x400000, True)
        k2 = n._keys(uop.pc)[0]
        assert k1 != k2


class TestTraining:
    def test_confidence_resets_on_false_dep(self):
        n = NoSQ(smb_confidence=3)
        uop = load()
        for _ in range(6):
            n.train(uop, n.predict(uop), dep())
        assert n.predict(uop).kind is PredictionKind.SMB
        n.train(uop, n.predict(uop), nodep())
        assert n.predict(uop).kind is PredictionKind.MDP

    def test_wrong_distance_reinstalls(self):
        n = NoSQ()
        uop = load()
        n.train(uop, n.predict(uop), dep(distance=3))
        n.train(uop, n.predict(uop), dep(distance=7))
        assert n.predict(uop).distance == 7

    def test_partial_overlap_blocks_smb_confidence(self):
        """MDP-only dependencies never earn bypass confidence in the
        path-dependent table."""
        n = NoSQ(smb_confidence=2)
        uop = load()
        for _ in range(10):
            n.train(uop, n.predict(uop), dep(bypass=BypassClass.MDP_ONLY))
        assert n.predict(uop).kind is PredictionKind.MDP

    def test_entry_never_unlearns_without_eviction(self):
        """No non-dependence memory: after confidence reset the entry still
        predicts a (false) dependence — NoSQ's Fig. 8 signature."""
        n = NoSQ()
        uop = load()
        n.train(uop, n.predict(uop), dep())
        for _ in range(50):
            pred = n.predict(uop)
            n.train(uop, pred, nodep())
            assert pred.predicts_dependence


class TestEndToEnd:
    def test_runs_on_trace(self, perlbench_trace):
        n = NoSQ()
        loads = drive_predictor(n, perlbench_trace)
        assert loads > 1000

    def test_reset(self, perlbench_trace):
        n = NoSQ()
        drive_predictor(n, perlbench_trace)
        n.reset()
        assert n.predict(load()).kind is PredictionKind.NO_DEP
