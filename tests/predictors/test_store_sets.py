"""Tests for the Store Sets baseline."""

import pytest

from repro.predictors.base import ActualOutcome, PredictionKind
from repro.predictors.store_sets import StoreSets
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import drive_predictor


def load(seq, pc=0x400100):
    return MicroOp(seq, pc, OpClass.LOAD, address=0x1000, size=8)


def store(seq, pc=0x400200):
    return MicroOp(seq, pc, OpClass.STORE, address=0x1000, size=8)


def violation(store_seq, store_pc=0x400200, distance=1):
    return ActualOutcome(distance=distance, store_seq=store_seq,
                         bypass=BypassClass.DIRECT, store_pc=store_pc)


class TestBasics:
    def test_size_is_18_5_kib(self):
        assert StoreSets().storage_kib == pytest.approx(18.5)

    def test_cold_predicts_no_dep(self):
        ss = StoreSets()
        assert ss.predict(load(10)).kind is PredictionKind.NO_DEP

    def test_never_smb(self):
        assert not StoreSets().supports_smb


class TestViolationTraining:
    def test_violation_creates_store_set(self):
        ss = StoreSets(clear_interval=0)
        uop = load(10)
        pred = ss.predict(uop)
        ss.train(uop, pred, violation(store_seq=5))
        # Next occurrence: the store is fetched, then the load predicts a
        # dependence on it.
        ss.on_store(store(20))
        pred = ss.predict(load(21))
        assert pred.kind is PredictionKind.MDP
        assert pred.store_seq == 20

    def test_no_training_without_violation(self):
        """A correctly-predicted dependence must not re-train."""
        ss = StoreSets(clear_interval=0)
        uop = load(10)
        ss.train(uop, ss.predict(uop), violation(store_seq=5))
        ss.on_store(store(20))
        uop2 = load(21)
        pred = ss.predict(uop2)
        before = ss.violations_trained
        ss.train(uop2, pred, violation(store_seq=20))
        assert ss.violations_trained == before

    def test_no_training_on_independent_load(self):
        ss = StoreSets(clear_interval=0)
        uop = load(10)
        pred = ss.predict(uop)
        ss.train(uop, pred, ActualOutcome(distance=0, store_seq=None,
                                          bypass=BypassClass.NONE))
        assert ss.violations_trained == 0

    def test_set_merging_on_shared_store(self):
        """Two loads violating on the same store end up serialised behind
        it — the over-serialisation that hurts Store Sets at scale."""
        ss = StoreSets(clear_interval=0)
        la, lb = load(10, pc=0x400100), load(11, pc=0x400108)
        ss.train(la, ss.predict(la), violation(store_seq=5))
        ss.train(lb, ss.predict(lb), violation(store_seq=5))
        ss.on_store(store(20))
        assert ss.predict(load(21, pc=0x400100)).store_seq == 20
        assert ss.predict(load(22, pc=0x400108)).store_seq == 20


class TestLFSTBehaviour:
    def test_stale_store_not_predicted(self):
        """A store beyond the instruction window has drained: no stall."""
        ss = StoreSets(clear_interval=0, instr_window=100)
        uop = load(10)
        ss.train(uop, ss.predict(uop), violation(store_seq=5))
        ss.on_store(store(20))
        pred = ss.predict(load(500))
        assert pred.kind is PredictionKind.NO_DEP

    def test_last_fetched_store_wins(self):
        ss = StoreSets(clear_interval=0)
        uop = load(10)
        ss.train(uop, ss.predict(uop), violation(store_seq=5))
        ss.on_store(store(20))
        ss.on_store(store(30))
        assert ss.predict(load(31)).store_seq == 30


class TestCyclicClearing:
    def test_tables_clear_periodically(self):
        ss = StoreSets(clear_interval=10)
        uop = load(10)
        ss.train(uop, ss.predict(uop), violation(store_seq=5))
        # Enough accesses to trigger the clear.
        for i in range(30):
            ss.predict(load(100 + i))
        ss.on_store(store(200))
        assert ss.predict(load(201)).kind is PredictionKind.NO_DEP

    def test_reset(self):
        ss = StoreSets(clear_interval=0)
        uop = load(10)
        ss.train(uop, ss.predict(uop), violation(store_seq=5))
        ss.reset()
        ss.on_store(store(20))
        assert ss.predict(load(21)).kind is PredictionKind.NO_DEP


class TestValidation:
    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            StoreSets(ssit_entries=0)
        with pytest.raises(ValueError):
            StoreSets(lfst_entries=-1)


class TestEndToEnd:
    def test_runs_on_trace(self, perlbench_trace):
        ss = StoreSets()
        loads = drive_predictor(ss, perlbench_trace)
        assert loads > 1000
        assert ss.violations_trained > 0
