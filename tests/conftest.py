"""Shared fixtures: small cached traces and predictor drivers."""

from __future__ import annotations

import pytest

from repro.predictors.base import ActualOutcome
from repro.trace.fixture_cache import cached_trace
from repro.trace.uop import OpClass


def small_trace(benchmark: str = "perlbench1", num_uops: int = 20_000,
                program_seed: int = 0, trace_seed: int = 1):
    """Small memoised trace — shared, LRU-bounded process-wide cache.

    Thin alias of :func:`repro.trace.fixture_cache.cached_trace` so tests
    and benches hit the same entries (generation happens once even when
    both suites run in one pytest invocation).
    """
    return cached_trace(benchmark, num_uops,
                        program_seed=program_seed, trace_seed=trace_seed)


@pytest.fixture
def perlbench_trace():
    return small_trace("perlbench1", 20_000)


@pytest.fixture
def lbm_trace():
    return small_trace("lbm", 15_000)


@pytest.fixture
def exchange_trace():
    return small_trace("exchange2", 15_000)


def drive_predictor(predictor, trace, collect=False):
    """Replay a trace through a predictor the way the harness does.

    Returns the list of (uop, prediction, actual) triples when ``collect``
    is true, else the count of loads processed.
    """
    triples = []
    branch_count = 0
    store_branch = {}
    store_pc = {}
    loads = 0
    for uop in trace:
        if uop.op is OpClass.BRANCH_COND:
            predictor.on_branch(uop.pc, uop.taken)
            branch_count += 1
        elif uop.op is OpClass.BRANCH_INDIRECT:
            predictor.on_indirect(uop.pc, uop.target)
            branch_count += 1
        elif uop.is_store:
            predictor.on_store(uop)
            store_branch[uop.seq] = branch_count
            store_pc[uop.seq] = uop.pc
        elif uop.is_load:
            prediction = predictor.predict(uop)
            bb = 0
            spc = None
            if uop.has_dependence:
                bb = branch_count - store_branch.get(uop.dep_store_seq,
                                                     branch_count)
                spc = store_pc.get(uop.dep_store_seq)
            actual = ActualOutcome.from_uop(uop, branches_between=bb,
                                            store_pc=spc)
            predictor.train(uop, prediction, actual)
            loads += 1
            if collect:
                triples.append((uop, prediction, actual))
    return triples if collect else loads
