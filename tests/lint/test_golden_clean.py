"""Golden + end-to-end CLI tests.

The golden test is the acceptance criterion that the shipped tree is
clean; the CLI tests prove the linter exits non-zero when the oracle or
determinism contracts are broken (ISSUE acceptance criteria).
"""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.lint import lint_paths
from repro.lint.cli import main

REPRO_PACKAGE = Path(repro.__file__).parent


class TestGoldenTreeIsClean:
    def test_lint_paths_on_shipped_tree(self):
        result = lint_paths([REPRO_PACKAGE])
        assert result.ok, [f.to_dict() for f in result.active]
        assert result.files > 50  # the whole package, not a subset

    def test_cli_json_output_is_clean(self, capsys):
        exit_code = main([str(REPRO_PACKAGE), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["summary"]["active"] == 0
        # Suppressions are justified debt, not invisible: they still appear.
        assert payload["summary"]["suppressed"] > 0


class TestCliExitCodes:
    def test_oracle_read_in_fake_predictor_fails_run(self, tmp_path, capsys):
        # Acceptance criterion: a non-oracle predict() reading uop.bypass /
        # uop.dep_store_seq must make `repro lint` exit non-zero.
        (tmp_path / "fake.py").write_text(
            "from repro.predictors.base import MDPredictor, Prediction\n"
            "from repro.predictors.base import PredictionKind\n"
            "\n"
            "\n"
            "class Fake(MDPredictor):\n"
            "    def predict(self, uop):\n"
            "        if uop.bypass or uop.dep_store_seq is not None:\n"
            "            return Prediction(PredictionKind.SMB, distance=1)\n"
            "        return Prediction(PredictionKind.NO_DEP)\n"
            "\n"
            "    def train(self, uop, prediction, actual):\n"
            "        pass\n",
            encoding="utf-8",
        )
        exit_code = main([str(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "oracle-leak" in out

    def test_unseeded_rng_in_experiment_cell_fails_run(self, tmp_path, capsys):
        # Acceptance criterion: unseeded RNG in an experiment cell.
        (tmp_path / "cell.py").write_text(
            "import random\n"
            "\n"
            "\n"
            "def run_cell(benchmark, predictor):\n"
            "    jitter = random.random()\n"
            "    return benchmark, predictor, jitter\n",
            encoding="utf-8",
        )
        exit_code = main([str(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "det-unseeded-rng" in out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        exit_code = main([str(tmp_path / "does-not-exist")])
        assert exit_code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("oracle-leak", "det-unseeded-rng", "hw-pow2-table"):
            assert rule in out

    def test_update_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "mod.py").write_text(
            "def f(a):\n    return id(a)\n", encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path), "--update-baseline"]) == 0
        capsys.readouterr()
        # The default ./lint-baseline.json is picked up automatically.
        assert main([str(tmp_path)]) == 0
        assert "baselined" in capsys.readouterr().out
