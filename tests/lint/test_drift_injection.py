"""Drift injection against a copy of the *real* tree.

The acceptance criterion for the interprocedural pass: seed one
asymmetry between ``core/pipeline.py`` and ``core/batched.py``, and
remove one ``_SHARED_SOURCES`` entry, and the lint run must go non-zero.
The copy keeps the on-disk ``__init__.py`` chain, so module names (and
therefore the suffix-based engine/entry detection) match the shipped
package exactly.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

import repro
from repro.lint import lint_paths

REPRO_PACKAGE = Path(repro.__file__).parent

INTERPROCEDURAL = ["eq", "salt", "conc"]


@pytest.fixture
def tree(tmp_path) -> Path:
    copy = tmp_path / "repro"
    shutil.copytree(REPRO_PACKAGE, copy,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return copy


def mutate(tree: Path, relative: str, old: str, new: str) -> None:
    path = tree / relative
    text = path.read_text()
    assert old in text, f"fixture drifted: {old!r} not in {relative}"
    path.write_text(text.replace(old, new))


class TestCleanCopyStaysClean:
    def test_zero_active_findings(self, tree):
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert result.ok, [f.to_dict() for f in result.active]


class TestSeededEngineAsymmetry:
    def test_batched_literal_for_config_read_fails_lint(self, tree):
        # "Edited the batched engine, replaced a config read with a
        # tuned constant" -- the canonical drift the golden grid would
        # only catch hours later.
        mutate(tree, "core/batched.py",
               "alu_lat = cfg.alu_latency", "alu_lat = 3")
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert result.exit_code != 0
        assert any(f.rule == "eq-config-read" for f in result.active)

    def test_scalar_stats_write_dropped_fails_lint(self, tree):
        mutate(tree, "core/batched.py",
               "stats.memory_squashes = n_squash", "pass  # dropped")
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert result.exit_code != 0
        assert any(f.rule == "eq-stats-write" for f in result.active)


class TestRemovedSaltEntry:
    def test_dropped_shared_source_fails_lint(self, tree):
        mutate(tree, "experiments/result_cache.py",
               '"trace", "core", "memory", "branch", "analysis", "common",',
               '"trace", "core", "memory", "analysis", "common",')
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert result.exit_code != 0
        missing = [f for f in result.active if f.rule == "salt-missing"]
        assert missing
        assert any("branch" in f.message for f in missing)

    def test_dropped_sampling_source_fails_lint(self, tree):
        # Sampled cells are cached under the same shared salt; losing the
        # "sampling" entry would serve stale reconstructions after any
        # edit to selection or reconstruction code.
        mutate(tree, "experiments/result_cache.py",
               '"analysis", "common", "sampling",',
               '"analysis", "common",')
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert result.exit_code != 0
        missing = [f for f in result.active if f.rule == "salt-missing"]
        assert missing
        assert any("sampling" in f.message for f in missing)


class TestUnsanctionedWorkerState:
    def test_new_mutable_global_in_worker_path_fails_lint(self, tree):
        mutate(tree, "trace/generator.py",
               "def generate_trace(",
               "_SEEN = {}\n\n\ndef _note(benchmark):\n"
               "    _SEEN[benchmark] = True\n\n\ndef generate_trace(")
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert result.exit_code != 0
        assert any(f.rule == "conc-mutable-global" for f in result.active)


class TestProtocolBoundary:
    def test_socket_in_worker_path_module_fails_lint(self, tree):
        # "Phoned home a progress ping from trace generation" -- network
        # I/O outside the audited frame codec dodges leases, digests and
        # fault injection.
        mutate(tree, "trace/generator.py",
               "def generate_trace(",
               "import socket\n\n\ndef _ping(host):\n"
               "    return socket.create_connection((host, 80))\n\n\n"
               "def generate_trace(")
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert result.exit_code != 0
        assert any(f.rule == "conc-socket" for f in result.active)

    def test_ad_hoc_file_lock_outside_cache_fails_lint(self, tree):
        # An ad-hoc O_EXCL lock in the journal would deadlock against
        # CacheLock's discipline on shared filesystems.
        mutate(tree, "experiments/journal.py",
               "def default_journal_dir(",
               "def _grab(path):\n"
               "    return os.open(path, os.O_CREAT | os.O_EXCL)\n\n\n"
               "def default_journal_dir(")
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert result.exit_code != 0
        assert any(f.rule == "conc-file-lock" for f in result.active)

    def test_sanctioned_modules_stay_clean(self, tree):
        # backends/worker (sockets) and result_cache (CacheLock) are the
        # sanctioned homes; the clean copy must not flag them.
        result = lint_paths([tree], select=INTERPROCEDURAL)
        assert not any(f.rule in ("conc-socket", "conc-file-lock")
                       for f in result.active)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
