"""Shared helpers for the lint test suite."""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

from repro.lint import lint_paths
from repro.lint.findings import Finding


class LintBox:
    """Write fixture modules into a tmp dir and lint them."""

    def __init__(self, root: Path):
        self.root = root

    def write(self, name: str, source: str) -> Path:
        path = self.root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def lint(self, baseline=None) -> List[Finding]:
        return lint_paths([self.root], baseline=baseline).findings

    def active_rules(self, baseline=None) -> List[str]:
        return [f.rule for f in self.lint(baseline=baseline) if f.active]


@pytest.fixture
def box(tmp_path: Path) -> LintBox:
    return LintBox(tmp_path)


#: A minimal non-oracle predictor that honours the contract.
HONEST_PREDICTOR = """
    from repro.predictors.base import MDPredictor, Prediction, PredictionKind


    class Honest(MDPredictor):
        def predict(self, uop):
            return Prediction(PredictionKind.NO_DEP, meta={"pc": uop.pc})

        def train(self, uop, prediction, actual):
            self.last = actual.bypass  # commit-time reads are legal
"""
