"""conc-*: fork/worker-safety of code reachable from pool workers.

The fixtures mirror the real layout: ``pkg/experiments/parallel.py``
defines ``compute_cell`` (the function the process pool maps), and the
modules it reaches carry the hazards under test.
"""

from __future__ import annotations

import pytest

PARALLEL = """
    from ..work import simulate


    def compute_cell(spec):
        return simulate(spec)


    def execute_cells(specs):
        return [compute_cell(s) for s in specs]
"""


def write_tree(box, work_source):
    box.write("pkg/__init__.py", "")
    box.write("pkg/experiments/__init__.py", "")
    box.write("pkg/experiments/parallel.py", PARALLEL)
    box.write("pkg/work.py", work_source)


def conc_rules(box):
    return [r for r in box.active_rules() if r.startswith("conc-")]


class TestMutableGlobal:
    def test_mutated_module_dict_fires(self, box):
        write_tree(box, """
            _CACHE = {}


            def simulate(spec):
                _CACHE[spec] = 1
                return _CACHE[spec]
        """)
        findings = [f for f in box.lint()
                    if f.active and f.rule == "conc-mutable-global"]
        assert len(findings) == 1
        assert "_CACHE" in findings[0].message

    def test_unmutated_registry_is_fine(self, box):
        write_tree(box, """
            FACTORIES = {"a": (lambda: 1)}


            def simulate(spec):
                return FACTORIES["a"]()
        """)
        assert conc_rules(box) == []

    def test_instance_of_nonfrozen_class_fires(self, box):
        write_tree(box, """
            class Memo:
                def __init__(self):
                    self.entries = {}


            _MEMO = Memo()


            def simulate(spec):
                return _MEMO.entries.get(spec, 0)
        """)
        assert "conc-mutable-global" in conc_rules(box)

    def test_frozen_dataclass_constant_is_fine(self, box):
        write_tree(box, """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Config:
                width: int = 4


            DEFAULT = Config()


            def simulate(spec):
                return DEFAULT.width
        """)
        assert conc_rules(box) == []

    def test_unreached_module_is_ignored(self, box):
        write_tree(box, """
            def simulate(spec):
                return spec
        """)
        box.write("pkg/offline.py", """
            _STATE = {}


            def record(x):
                _STATE[x] = 1
        """)
        assert conc_rules(box) == []

    def test_pragma_suppresses_sanctioned_memo(self, box):
        write_tree(box, """
            # repro-lint: allow(conc-mutable-global) -- content-keyed memo
            _CACHE = {}


            def simulate(spec):
                _CACHE[spec] = 1
                return _CACHE[spec]
        """)
        findings = [f for f in box.lint() if f.rule == "conc-mutable-global"]
        assert findings and all(f.suppressed for f in findings)


class TestGlobalRebind:
    def test_rebind_in_worker_reachable_function_fires(self, box):
        write_tree(box, """
            _COUNT = 0


            def simulate(spec):
                global _COUNT
                _COUNT += 1
                return _COUNT
        """)
        assert "conc-global-rebind" in conc_rules(box)


class TestProcessHandle:
    def test_module_scope_lock_fires(self, box):
        write_tree(box, """
            import threading

            _LOCK = threading.Lock()


            def simulate(spec):
                with _LOCK:
                    return spec
        """)
        assert "conc-process-handle" in conc_rules(box)

    def test_no_worker_entry_stands_down(self, box):
        # The same hazard without a compute_cell in the tree: the checker
        # cannot tell what is worker-reachable, so it stays quiet.
        box.write("pkg/__init__.py", "")
        box.write("pkg/work.py", """
            import threading

            _LOCK = threading.Lock()
        """)
        assert conc_rules(box) == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
