"""eq-*: scalar/batched engine semantic-surface comparison.

A miniature engine pair shaped like the real tree (``pkg/core/pipeline.py``
with ``Pipeline``, ``pkg/core/batched.py`` with ``BatchedPipeline``)
exercises the alias tracking, session-hook normalisation and literal
pairing; each drift test injects one asymmetry and asserts exactly the
matching rule fires.
"""

from __future__ import annotations

import pytest

# A symmetric pair: the batched half hoists config fields into locals,
# drives the predictor through a batch session with a fused
# predict_train hook, and uses a bound-method alias -- all of which must
# normalise to the scalar surface.
SCALAR = """
    class Pipeline:
        def __init__(self, predictor, config):
            self.config = config
            self.predictor = predictor
            self.stats = make_stats()

        def run(self, trace):
            cfg = self.config
            lat = 0
            for uop in trace:
                pred = self.predictor.predict(uop)
                self.predictor.train(uop, pred, uop)
                lat = cfg.alu_latency + uop.extra
                if uop.is_store:
                    self.predictor.on_store(uop)
                    lat = lat + cfg.sb_drain_latency + 64
                self.stats.instructions += 1
            self.stats.cycles = lat
            self.stats.record(trace)
"""

BATCHED = """
    class BatchedPipeline:
        def __init__(self, predictor, config):
            self.config = config
            self.predictor = predictor
            self.stats = make_stats()

        def run(self, trace):
            cfg = self.config
            alu_lat = cfg.alu_latency
            session = self.predictor.batch_session()
            s_on_store = session.on_store
            lat = 0
            for uop in trace:
                session.predict_train(uop)
                lat = alu_lat + uop.extra
                if uop.is_store:
                    s_on_store(uop)
                    lat = lat + cfg.sb_drain_latency + 64
                self.stats.instructions += 1
            session.finish()
            self.stats.cycles = lat
            self.stats.record(trace)
"""


def write_pair(box, scalar=SCALAR, batched=BATCHED):
    box.write("pkg/__init__.py", "")
    box.write("pkg/core/__init__.py", "")
    box.write("pkg/core/pipeline.py", scalar)
    box.write("pkg/core/batched.py", batched)


def eq_rules(box):
    return [r for r in box.active_rules() if r.startswith("eq-")]


class TestCleanPairIsSilent:
    def test_symmetric_engines_produce_no_findings(self, box):
        write_pair(box)
        assert eq_rules(box) == []

    def test_single_engine_tree_is_not_compared(self, box):
        # Per-file lints and scalar-only fixtures must stay quiet.
        box.write("pkg/__init__.py", "")
        box.write("pkg/core/__init__.py", "")
        box.write("pkg/core/pipeline.py", SCALAR)
        assert eq_rules(box) == []


class TestConfigReadDrift:
    def test_hoisted_read_replaced_by_literal_fires(self, box):
        write_pair(box, batched=BATCHED.replace(
            "alu_lat = cfg.alu_latency", "alu_lat = 3"))
        assert "eq-config-read" in eq_rules(box)

    def test_scalar_only_field_fires_on_scalar_side(self, box):
        write_pair(box, scalar=SCALAR.replace(
            "lat = cfg.alu_latency + uop.extra",
            "lat = cfg.alu_latency + cfg.mul_latency + uop.extra"))
        findings = [f for f in box.lint()
                    if f.active and f.rule == "eq-config-read"]
        assert len(findings) == 1
        assert "mul_latency" in findings[0].message
        assert findings[0].module.endswith("core.pipeline")


class TestStatsWriteDrift:
    def test_missing_stats_write_fires(self, box):
        write_pair(box, batched=BATCHED.replace(
            "self.stats.instructions += 1", "pass"))
        assert "eq-stats-write" in eq_rules(box)

    def test_missing_stats_method_call_fires(self, box):
        write_pair(box, scalar=SCALAR.replace(
            "self.stats.record(trace)", "pass"))
        assert "eq-stats-write" in eq_rules(box)


class TestHookDrift:
    def test_dropped_session_hook_fires(self, box):
        write_pair(box, batched=BATCHED.replace(
            "s_on_store(uop)", "pass"))
        assert "eq-predictor-call" in eq_rules(box)

    def test_session_lifecycle_hooks_are_normalised_away(self, box):
        # finish()/batch_session() have no scalar counterpart by design
        # and must not fire -- covered by the clean-pair test, but spell
        # out the one-sided direction too: dropping finish() changes
        # nothing the comparison sees.
        write_pair(box, batched=BATCHED.replace("session.finish()", "pass"))
        assert eq_rules(box) == []


class TestLiteralDrift:
    def test_changed_literal_fires_both_sides(self, box):
        write_pair(box, batched=BATCHED.replace(
            "cfg.sb_drain_latency + 64", "cfg.sb_drain_latency + 32"))
        findings = [f for f in box.lint()
                    if f.active and f.rule == "eq-config-literal"]
        # 64 is now scalar-only and 32 batched-only: one finding each.
        assert len(findings) == 2

    def test_pragma_suppresses_deliberate_asymmetry(self, box):
        write_pair(box, scalar=SCALAR.replace(
            "lat = lat + cfg.sb_drain_latency + 64",
            "lat = lat + cfg.sb_drain_latency + 64\n"
            "                    # repro-lint: allow(eq-config-literal) -- provisional slack\n"
            "                    lat = lat + cfg.sb_drain_latency + 96"))
        findings = [f for f in box.lint() if f.rule == "eq-config-literal"]
        assert findings and all(f.suppressed for f in findings)


class TestZeroAndOneAreNoise:
    def test_port_list_zeros_do_not_pair(self, box):
        write_pair(box, scalar=SCALAR.replace(
            "lat = 0", "ports = [0] * cfg.load_ports\n            lat = 0"))
        # cfg.load_ports is now scalar-only: the config-read asymmetry
        # fires, but no literal pairing does (0 is structural noise).
        rules = eq_rules(box)
        assert "eq-config-read" in rules
        assert "eq-config-literal" not in rules


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
