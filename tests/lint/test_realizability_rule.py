"""hw-*: power-of-two tables, counter widths, geometric history, KiB budgets."""

from __future__ import annotations


class TestPow2Tables:
    def test_non_pow2_entries_keyword_flagged(self, box):
        box.write("cfg.py", """
        def build(make):
            return make(table_entries=1000)
        """)
        assert box.active_rules() == ["hw-pow2-table"]

    def test_pow2_entries_keyword_is_clean(self, box):
        box.write("cfg.py", """
        def build(make):
            return make(table_entries=1024)
        """)
        assert box.active_rules() == []

    def test_class_default_flagged(self, box):
        box.write("cfg.py", """
        class Config:
            ssit_entries: int = 100
        """)
        assert box.active_rules() == ["hw-pow2-table"]

    def test_function_default_flagged(self, box):
        box.write("cfg.py", """
        def make_table(num_entries=48):
            return [None] * num_entries
        """)
        assert box.active_rules() == ["hw-pow2-table"]


class TestCounterWidths:
    def test_over_wide_counter_flagged(self, box):
        box.write("cfg.py", """
        class Config:
            usefulness_bits: int = 9
        """)
        assert box.active_rules() == ["hw-counter-width"]

    def test_zero_width_counter_flagged(self, box):
        box.write("cfg.py", """
        def build(make):
            return make(confidence_bits=0)
        """)
        assert box.active_rules() == ["hw-counter-width"]

    def test_sane_counter_is_clean(self, box):
        box.write("cfg.py", """
        class Config:
            bypass_bits: int = 2
            confidence_bits: int = 3
        """)
        assert box.active_rules() == []

    def test_excluded_names_are_not_widths(self, box):
        # Capacities and correction terms, not hardware field widths.
        box.write("cfg.py", """
        class Config:
            max_bits: int = 1024
            extra_bits: int = 0
        """)
        assert box.active_rules() == []


class TestDistanceBits:
    def test_too_narrow_distance_field_flagged(self, box):
        # A 114-entry store window needs ceil(log2(115)) = 7 distance bits.
        box.write("cfg.py", """
        class Config:
            distance_bits: int = 4
        """)
        assert box.active_rules() == ["hw-counter-width"]

    def test_seven_bit_distance_is_clean(self, box):
        box.write("cfg.py", """
        class Config:
            distance_bits: int = 7
        """)
        assert box.active_rules() == []


class TestGeometricHistory:
    def test_linear_history_series_flagged(self, box):
        box.write("cfg.py", """
        HISTORY_LENGTHS = (10, 20, 30, 40)
        """)
        assert box.active_rules() == ["hw-history-geometric"]

    def test_geometric_series_is_clean(self, box):
        box.write("cfg.py", """
        HISTORY_LENGTHS = (2, 5, 11, 27, 64)
        """)
        assert box.active_rules() == []


class TestFieldsPerEntry:
    def test_dict_literal_checked(self, box):
        box.write("cfg.py", """
        fields_per_entry = {
            "tag": 12,
            "distance": 4,
        }
        """)
        assert box.active_rules() == ["hw-counter-width"]

    def test_sane_dict_literal_is_clean(self, box):
        box.write("cfg.py", """
        fields_per_entry = {
            "tag": 12,
            "distance": 7,
            "usefulness": 2,
        }
        """)
        assert box.active_rules() == []


class TestKibBudget:
    # Mirrors repro.predictors.configs.MascotConfig's field shapes:
    # per-table entry/tag tuples plus scalar per-entry widths.
    MASCOT_CONFIG = """\
        class MascotConfig:
            table_entries: tuple = (512, 512)
            tag_bits: tuple = (16, 16)
            distance_bits: int = 7
            usefulness_bits: int = 3
            bypass_bits: int = 2
        """

    def test_matching_budget_is_clean(self, box):
        # 2 tables x 512 entries x (16 + 7 + 3 + 2) bits = 3.5 KiB.
        box.write("cfg.py", self.MASCOT_CONFIG + """

        # repro-lint: budget(3.5 KiB)
        DEFAULT = MascotConfig()
        """)
        assert box.active_rules() == []

    def test_mismatched_budget_flagged(self, box):
        box.write("cfg.py", self.MASCOT_CONFIG + """

        # repro-lint: budget(14.0 KiB)
        DEFAULT = MascotConfig()
        """)
        assert box.active_rules() == ["hw-kib-budget"]

    def test_call_kwargs_override_class_defaults(self, box):
        # 2 tables x 1024 entries x 28 bits = 7.0 KiB.
        box.write("cfg.py", self.MASCOT_CONFIG + """

        # repro-lint: budget(7.0 KiB)
        BIG = MascotConfig(table_entries=(1024, 1024))
        """)
        assert box.active_rules() == []


class TestSuppression:
    def test_allow_pragma_suppresses_hw_finding(self, box):
        box.write("cfg.py", """
        def build(make):
            # repro-lint: allow(hw-pow2-table) -- idealised capacity sweep
            return make(table_entries=1000)
        """)
        findings = box.lint()
        assert [f.rule for f in findings] == ["hw-pow2-table"]
        assert findings[0].suppressed
        assert box.active_rules() == []
