"""salt-*: cache-salt reachability audit.

A miniature package shaped like the real tree — ``experiments/runner.py``
as the cell-execution entry, ``experiments/result_cache.py`` carrying the
salt tuples — proves each rule fires on exactly the drift it names and
that a consistent salt stays silent.
"""

from __future__ import annotations

import pytest

RUNNER = """
    from ..core.engine import simulate
    from ..predictors.base import MDPredictor


    def run_timing(trace, predictor):
        return simulate(trace, predictor)
"""

RESULT_CACHE = """
    _SHARED_SOURCES = (
        "core", "experiments/runner.py",
    )

    _PREDICTOR_COMMON_SOURCES = (
        "predictors/base.py",
    )
"""


def write_tree(box, runner=RUNNER, result_cache=RESULT_CACHE):
    box.write("pkg/__init__.py", "")
    box.write("pkg/experiments/__init__.py", "")
    box.write("pkg/experiments/runner.py", runner)
    box.write("pkg/experiments/result_cache.py", result_cache)
    box.write("pkg/core/__init__.py", "")
    box.write("pkg/core/engine.py", """
        def simulate(trace, predictor):
            return len(trace)
    """)
    box.write("pkg/predictors/__init__.py", "")
    box.write("pkg/predictors/base.py", "class MDPredictor:\n    pass\n")


def salt_rules(box):
    return [r for r in box.active_rules() if r.startswith("salt-")]


class TestConsistentSaltIsSilent:
    def test_clean_tree(self, box):
        write_tree(box)
        assert salt_rules(box) == []

    def test_checker_stands_down_without_runner(self, box):
        # Linting result_cache.py alone (per-file lint) must not drown
        # the user in stale-entry noise.
        box.write("pkg/__init__.py", "")
        box.write("pkg/experiments/__init__.py", "")
        box.write("pkg/experiments/result_cache.py", RESULT_CACHE)
        assert salt_rules(box) == []


class TestSaltMissing:
    def test_reachable_uncovered_module_fires(self, box):
        write_tree(box, runner=RUNNER.replace(
            "from ..core.engine import simulate",
            "from ..core.engine import simulate\n"
            "    from ..helpers import tweak"))
        box.write("pkg/helpers.py", "def tweak(x):\n    return x\n")
        findings = [f for f in box.lint()
                    if f.active and f.rule == "salt-missing"]
        assert len(findings) == 1
        assert "helpers" in findings[0].message
        # Anchored at the salt tuple, where the fix happens.
        assert findings[0].module.endswith("experiments.result_cache")

    def test_predictor_modules_are_fingerprint_covered(self, box):
        # predictors/ is salted per predictor, not via _SHARED_SOURCES.
        write_tree(box, runner=RUNNER.replace(
            "from ..predictors.base import MDPredictor",
            "from ..predictors.base import MDPredictor\n"
            "    from ..predictors.fancy import Fancy"))
        box.write("pkg/predictors/fancy.py", "class Fancy:\n    pass\n")
        assert salt_rules(box) == []

    def test_removed_entry_is_caught(self, box):
        # The acceptance-criterion drift: drop a salt entry whose tree is
        # still reachable and the audit must fail the lint run.
        write_tree(box, result_cache=RESULT_CACHE.replace(
            '"core", ', ""))
        assert "salt-missing" in salt_rules(box)


class TestSaltStale:
    def test_entry_matching_nothing_fires(self, box):
        write_tree(box, result_cache=RESULT_CACHE.replace(
            '"core",', '"core", "ghost",'))
        findings = [f for f in box.lint()
                    if f.active and f.rule == "salt-stale"]
        assert len(findings) == 1
        assert "'ghost'" in findings[0].message

    def test_unreachable_entry_fires(self, box):
        write_tree(box, result_cache=RESULT_CACHE.replace(
            '"core",', '"core", "orphan",'))
        box.write("pkg/orphan/__init__.py", "")
        box.write("pkg/orphan/dead.py", "def unused():\n    return 0\n")
        findings = [f for f in box.lint()
                    if f.active and f.rule == "salt-stale"]
        assert len(findings) == 1
        assert "unreachable" in findings[0].message


class TestSaltOpaque:
    def test_computed_element_fires(self, box):
        write_tree(box, result_cache=RESULT_CACHE.replace(
            '"core",', '"core", "experiments/" + "extra.py",'))
        assert "salt-opaque" in salt_rules(box)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
