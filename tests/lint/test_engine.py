"""Engine plumbing: pragmas, baselines, fingerprints, reporters, errors."""

from __future__ import annotations

import json
from collections import Counter

from repro.lint import lint_paths
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import (ALL_FAMILIES, ALL_RULES, collect_files,
                               rule_family)
from repro.lint.report import render_json, render_text

import pytest


class TestRuleRegistry:
    def test_all_families_plus_parse_error_registered(self):
        assert "parse-error" in ALL_RULES
        assert "oracle-leak" in ALL_RULES
        for prefix in ("det-", "hw-", "eq-", "salt-", "conc-"):
            assert any(rule.startswith(prefix) for rule in ALL_RULES), prefix

    def test_family_registry_matches_rules(self):
        assert set(ALL_FAMILIES) == {rule_family(r) for r in ALL_RULES}

    def test_descriptions_are_nonempty(self):
        assert all(ALL_RULES.values())


class TestCollectFiles:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "nope"])

    def test_directories_and_files_deduped_and_sorted(self, box):
        a = box.write("a.py", "x = 1\n")
        box.write("sub/b.py", "y = 2\n")
        files = collect_files([box.root, a])
        assert [f.name for f in files] == ["a.py", "b.py"]


class TestParseError:
    def test_syntax_error_becomes_finding(self, box):
        box.write("broken.py", "def oops(:\n")
        findings = box.lint()
        assert [f.rule for f in findings] == ["parse-error"]
        assert findings[0].active
        assert "syntax error" in findings[0].message


class TestSuppressions:
    def test_pragma_covers_own_and_next_line_only(self, box):
        box.write("mod.py", """
        def f(a, b):
            keys = id(a)  # repro-lint: allow(det-id)
            # repro-lint: allow(det-id) -- next-line form
            more = id(b)
            far = id((a, b))
            return keys, more, far
        """)
        findings = box.lint()
        assert [f.suppressed for f in findings] == [True, True, False]

    def test_pragma_for_other_rule_does_not_suppress(self, box):
        box.write("mod.py", """
        def f(a):
            # repro-lint: allow(det-hash) -- wrong rule on purpose
            return id(a)
        """)
        assert box.active_rules() == ["det-id"]

    def test_multi_rule_pragma(self, box):
        box.write("mod.py", """
        def f(a):
            # repro-lint: allow(det-id, det-hash) -- both on one line
            return id(a) + hash(a)
        """)
        findings = box.lint()
        assert {f.rule for f in findings} == {"det-id", "det-hash"}
        assert all(f.suppressed for f in findings)

    def test_allow_file_pragma_covers_whole_module(self, box):
        box.write("mod.py", """
        # repro-lint: allow-file(det-id) -- identity keys throughout
        def f(a):
            return id(a)


        def g(b):
            return id(b)
        """)
        findings = box.lint()
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)


class TestFingerprints:
    def test_fingerprint_ignores_line_numbers(self, box):
        source = """
        def f(a):
            return id(a)
        """
        box.write("mod.py", source)
        before = box.lint()[0].fingerprint
        box.write("mod.py", "\n\n\n" + source)  # shift every line down
        after = box.lint()[0].fingerprint
        assert before == after

    def test_fingerprint_distinguishes_rules_and_symbols(self, box):
        box.write("mod.py", """
        def f(a):
            return id(a)


        def g(a):
            return id(a)
        """)
        findings = box.lint()
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint


class TestBaseline:
    def test_round_trip_marks_findings_baselined(self, box, tmp_path):
        box.write("mod.py", """
        def f(a):
            return id(a)
        """)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(box.lint(), baseline_path)

        result = lint_paths([box.root], baseline=baseline_path)
        assert result.findings[0].baselined
        assert not result.findings[0].active
        assert result.ok and result.exit_code == 0

    def test_new_findings_stay_active_under_old_baseline(self, box, tmp_path):
        box.write("mod.py", """
        def f(a):
            return id(a)
        """)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(box.lint(), baseline_path)

        box.write("mod2.py", """
        def g(a):
            return hash(a)
        """)
        result = lint_paths([box.root], baseline=baseline_path)
        assert [f.rule for f in result.active] == ["det-hash"]
        assert result.exit_code == 1

    def test_multiset_semantics(self, box):
        # Two identical findings, one baseline entry: only one is covered.
        box.write("mod.py", """
        def f(a):
            return id(a), id(a)
        """)
        findings = box.lint()
        assert len(findings) == 2
        apply_baseline(findings, Counter([findings[0].fingerprint]))
        assert [f.baselined for f in findings] == [True, False]

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_version_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_suppressed_findings_are_not_written(self, box, tmp_path):
        box.write("mod.py", """
        def f(a):
            # repro-lint: allow(det-id) -- suppressed, stays out of baseline
            return id(a)
        """)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(box.lint(), baseline_path)
        data = json.loads(baseline_path.read_text())
        assert data == {"version": 1, "findings": []}


class TestReporters:
    def _one_finding(self, box):
        box.write("mod.py", """
        def f(a):
            return id(a)
        """)
        return box.lint()

    def test_text_report_lists_location_and_rule(self, box):
        findings = self._one_finding(box)
        text = render_text(findings, files=1)
        assert "mod.py:3:" in text
        assert "det-id" in text
        assert "1 file" in text

    def test_text_report_hides_suppressed_by_default(self, box):
        box.write("mod.py", """
        def f(a):
            # repro-lint: allow(det-id) -- fine
            return id(a)
        """)
        findings = box.lint()
        assert "det-id" not in render_text(findings, files=1)
        shown = render_text(findings, files=1, show_suppressed=True)
        assert "det-id" in shown and "fine" in shown

    def test_json_report_schema(self, box):
        findings = self._one_finding(box)
        payload = json.loads(render_json(findings, files=1))
        assert payload["files"] == 1
        assert payload["summary"]["active"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "det-id"
        assert entry["fingerprint"] == findings[0].fingerprint


class TestFamilyFilters:
    DIRTY = """
        def f(a):
            return id(a)
    """

    def test_select_keeps_only_named_families(self, box):
        box.write("mod.py", self.DIRTY)
        result = lint_paths([box.root], select=["det"])
        assert [f.rule for f in result.active] == ["det-id"]
        result = lint_paths([box.root], select=["eq", "salt", "conc"])
        assert result.active == []

    def test_ignore_drops_named_families(self, box):
        box.write("mod.py", self.DIRTY)
        result = lint_paths([box.root], ignore=["det"])
        assert result.active == []

    def test_unknown_family_raises_value_error(self, box):
        box.write("mod.py", "x = 1\n")
        with pytest.raises(ValueError, match="unknown rule family"):
            lint_paths([box.root], select=["bogus"])
        with pytest.raises(ValueError, match="unknown rule family"):
            lint_paths([box.root], ignore=["bogus"])

    def test_parse_error_survives_any_selection(self, box):
        box.write("broken.py", "def f(:\n")
        result = lint_paths([box.root], select=["eq"])
        assert [f.rule for f in result.active] == ["parse-error"]


class TestCliFamilyFiltersAndMetrics:
    def test_select_flag_filters_and_exits_clean(self, box, capsys):
        from repro.lint.cli import main

        box.write("mod.py", TestFamilyFilters.DIRTY)
        assert main([str(box.root), "--select", "eq,salt,conc"]) == 0
        assert main([str(box.root), "--select", "det"]) == 1
        capsys.readouterr()

    def test_unknown_family_exits_2(self, box, capsys):
        from repro.lint.cli import main

        box.write("mod.py", "x = 1\n")
        assert main([str(box.root), "--select", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule family" in err

    def test_metrics_flag_appends_jsonl_record(self, box, tmp_path, capsys):
        from repro.lint.cli import main

        box.write("mod.py", TestFamilyFilters.DIRTY)
        metrics = tmp_path / "obs" / "lint.jsonl"
        assert main([str(box.root), "--metrics", str(metrics)]) == 1
        assert main([str(box.root), "--metrics", str(metrics),
                     "--select", "eq"]) == 0
        capsys.readouterr()
        lines = [json.loads(line)
                 for line in metrics.read_text().splitlines()]
        assert len(lines) == 2
        first, second = lines
        assert first["event"] == "lint"
        assert first["files"] == 1
        assert first["active"] == 1
        assert first["findings_by_family"] == {"det": 1}
        assert first["wall_seconds"] >= 0
        assert first["rules_run"] == len(ALL_RULES)
        # The eq-only run checks fewer rules and finds nothing.
        assert second["active"] == 0
        assert second["rules_run"] < first["rules_run"]
