"""det-*: unseeded RNG, wall-clock/entropy, id()/hash(), set order, env."""

from __future__ import annotations


class TestUnseededRng:
    def test_random_module_calls_flagged(self, box):
        box.write("cell.py", """
        import random


        def run_cell():
            return random.random() < 0.5
        """)
        assert box.active_rules() == ["det-unseeded-rng"]

    def test_random_constructor_without_seed_flagged(self, box):
        box.write("cell.py", """
        import random


        def make():
            return random.Random()
        """)
        assert box.active_rules() == ["det-unseeded-rng"]

    def test_seeded_constructor_is_clean(self, box):
        box.write("cell.py", """
        import random


        def make(seed):
            return random.Random(seed)
        """)
        assert box.active_rules() == []

    def test_numpy_default_rng_without_seed_flagged(self, box):
        box.write("cell.py", """
        import numpy as np


        def make():
            return np.random.default_rng()
        """)
        assert box.active_rules() == ["det-unseeded-rng"]

    def test_numpy_default_rng_with_seed_is_clean(self, box):
        box.write("cell.py", """
        import numpy as np


        def make(seed):
            return np.random.default_rng(seed)
        """)
        assert box.active_rules() == []

    def test_numpy_global_draw_flagged(self, box):
        box.write("cell.py", """
        import numpy as np


        def scramble(values):
            np.random.shuffle(values)
        """)
        assert box.active_rules() == ["det-unseeded-rng"]

    def test_numpy_random_from_import_module_flagged(self, box):
        # ``from numpy import random`` binds the *numpy* random module to
        # the stdlib module's usual name; draws through it are still the
        # process-global numpy RNG.
        box.write("cell.py", """
        from numpy import random


        def draw():
            return random.rand()
        """)
        assert box.active_rules() == ["det-unseeded-rng"]

    def test_numpy_random_aliased_module_flagged(self, box):
        box.write("cell.py", """
        import numpy.random as npr


        def reseed():
            npr.seed(0)
        """)
        assert box.active_rules() == ["det-unseeded-rng"]

    def test_numpy_draw_from_import_flagged(self, box):
        box.write("cell.py", """
        from numpy.random import shuffle


        def scramble(values):
            shuffle(values)
        """)
        assert box.active_rules() == ["det-unseeded-rng"]

    def test_numpy_seeded_rng_via_module_alias_is_clean(self, box):
        box.write("cell.py", """
        from numpy import random


        def make(seed):
            return random.default_rng(seed)
        """)
        assert box.active_rules() == []

    def test_method_on_local_rng_instance_is_clean(self, box):
        # rng.random() on a passed-in generator is fine: the seed is the
        # caller's responsibility, and that call chain is deterministic.
        box.write("cell.py", """
        def run_cell(rng):
            return rng.random() < 0.5
        """)
        assert box.active_rules() == []


class TestClockAndEntropy:
    def test_time_calls_flagged(self, box):
        box.write("mod.py", """
        import time


        def stamp():
            return time.time()
        """)
        assert box.active_rules() == ["det-time"]

    def test_urandom_flagged(self, box):
        box.write("mod.py", """
        import os


        def token():
            return os.urandom(8)
        """)
        assert box.active_rules() == ["det-entropy"]

    def test_uuid4_flagged(self, box):
        box.write("mod.py", """
        import uuid


        def fresh():
            return uuid.uuid4()
        """)
        assert box.active_rules() == ["det-entropy"]


class TestIdentityAndHash:
    def test_id_flagged(self, box):
        box.write("mod.py", """
        def key(obj):
            return id(obj)
        """)
        assert box.active_rules() == ["det-id"]

    def test_builtin_hash_flagged(self, box):
        box.write("mod.py", """
        def bucket(name, n):
            return hash(name) % n
        """)
        assert box.active_rules() == ["det-hash"]

    def test_dunder_hash_definition_is_clean(self, box):
        # Defining __hash__ (and delegating inside it) is legitimate.
        box.write("mod.py", """
        class Key:
            def __init__(self, pc):
                self.pc = pc

            def __hash__(self):
                return hash(self.pc)
        """)
        assert box.active_rules() == []


class TestSetOrder:
    def test_iterating_set_literal_flagged(self, box):
        box.write("mod.py", """
        def emit(a, b):
            out = []
            for item in {a, b}:
                out.append(item)
            return out
        """)
        assert box.active_rules() == ["det-set-order"]

    def test_iterating_named_set_flagged(self, box):
        box.write("mod.py", """
        def emit(items):
            seen = set(items)
            return [x * 2 for x in seen]
        """)
        assert box.active_rules() == ["det-set-order"]

    def test_sorted_set_is_clean(self, box):
        box.write("mod.py", """
        def emit(items):
            seen = set(items)
            return [x * 2 for x in sorted(seen)]
        """)
        assert box.active_rules() == []

    def test_membership_only_set_is_clean(self, box):
        box.write("mod.py", """
        def dedupe(items):
            seen = set()
            out = []
            for item in items:
                if item not in seen:
                    seen.add(item)
                    out.append(item)
            return out
        """)
        assert box.active_rules() == []


class TestEnvReads:
    def test_environ_read_flagged(self, box):
        box.write("mod.py", """
        import os


        def jobs():
            return int(os.environ.get("REPRO_JOBS", "1"))
        """)
        assert box.active_rules() == ["det-env"]

    def test_getenv_flagged(self, box):
        box.write("mod.py", """
        import os


        def jobs():
            return os.getenv("REPRO_JOBS")
        """)
        assert box.active_rules() == ["det-env"]

    def test_sanctioned_module_is_exempt(self, box):
        # The result cache is the one sanctioned env surface; mirror its
        # package path inside the fixture tree.
        box.write("repro/__init__.py", "")
        box.write("repro/experiments/__init__.py", "")
        box.write("repro/experiments/result_cache.py", """
        import os


        def cache_dir():
            return os.environ.get("REPRO_CACHE_DIR", ".cache")
        """)
        assert box.active_rules() == []


class TestSuppression:
    def test_allow_pragma_suppresses_det_finding(self, box):
        box.write("mod.py", """
        def key(obj):
            # repro-lint: allow(det-id) -- per-process memo, never persisted
            return id(obj)
        """)
        findings = box.lint()
        assert [f.rule for f in findings] == ["det-id"]
        assert findings[0].suppressed
        assert findings[0].justification == "per-process memo, never persisted"
        assert box.active_rules() == []


class TestResilienceSurface:
    """det-* coverage of the fault-tolerance modules.

    The supervisor (repro.experiments.parallel) alone may read monotonic
    clocks — they schedule work, never enter results.  The journal and
    resilience modules are sanctioned env surfaces (journal dir override,
    fault-injection switch) but get no clock or RNG exemption: backoff
    jitter must derive from cell keys.
    """

    def test_monotonic_allowed_in_supervisor(self, box):
        box.write("repro/__init__.py", "")
        box.write("repro/experiments/__init__.py", "")
        box.write("repro/experiments/parallel.py", """
        import time


        def deadline(timeout):
            return time.monotonic() + timeout
        """)
        assert box.active_rules() == []

    def test_wall_clock_still_flagged_in_supervisor(self, box):
        box.write("repro/__init__.py", "")
        box.write("repro/experiments/__init__.py", "")
        box.write("repro/experiments/parallel.py", """
        import time


        def stamp():
            return time.time()
        """)
        assert box.active_rules() == ["det-time"]

    def test_monotonic_flagged_outside_supervisor(self, box):
        box.write("repro/__init__.py", "")
        box.write("repro/experiments/__init__.py", "")
        box.write("repro/experiments/resilience.py", """
        import time


        def jitter():
            return time.monotonic() % 1.0
        """)
        assert box.active_rules() == ["det-time"]

    def test_random_jitter_flagged_in_resilience(self, box):
        # Backoff jitter must come from the cell key, not the global RNG.
        box.write("repro/__init__.py", "")
        box.write("repro/experiments/__init__.py", "")
        box.write("repro/experiments/resilience.py", """
        import random


        def backoff_jitter():
            return random.random()
        """)
        assert box.active_rules() == ["det-unseeded-rng"]

    def test_bench_harness_clock_and_write_sanctioned(self, box):
        # The throughput bench's product *is* perf_counter deltas, and it
        # writes the committed baseline file — both sanctioned for
        # repro.experiments.bench_baseline only.
        box.write("repro/__init__.py", "")
        box.write("repro/experiments/__init__.py", "")
        box.write("repro/experiments/bench_baseline.py", """
        import time
        from pathlib import Path


        def measure(fn, path):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            Path(path).write_text(str(elapsed))
            return elapsed
        """)
        assert box.active_rules() == []

    def test_wall_clock_still_flagged_in_bench_harness(self, box):
        box.write("repro/__init__.py", "")
        box.write("repro/experiments/__init__.py", "")
        box.write("repro/experiments/bench_baseline.py", """
        import time


        def stamp():
            return time.time()
        """)
        assert box.active_rules() == ["det-time"]

    def test_env_sanctioned_in_journal_and_resilience(self, box):
        box.write("repro/__init__.py", "")
        box.write("repro/experiments/__init__.py", "")
        box.write("repro/experiments/journal.py", """
        import os


        def journal_dir():
            return os.environ.get("REPRO_JOURNAL_DIR", "journals")
        """)
        box.write("repro/experiments/resilience.py", """
        import os


        def fault_spec():
            return os.environ.get("REPRO_FAULT_INJECT", "")
        """)
        assert box.active_rules() == []


class TestFileWrites:
    """det-write: file writes confined to the sanctioned output surface."""

    def test_open_for_write_flagged(self, box):
        box.write("cell.py", """
        def dump(rows):
            with open("debug.txt", "w") as handle:
                handle.write(repr(rows))
        """)
        assert box.active_rules() == ["det-write"]

    def test_append_and_exclusive_modes_flagged(self, box):
        box.write("cell.py", """
        def log(line, path):
            open(path, mode="a").write(line)


        def create(path):
            return open(path, "x")
        """)
        assert box.active_rules() == ["det-write", "det-write"]

    def test_read_mode_is_clean(self, box):
        box.write("cell.py", """
        def slurp(path):
            with open(path) as handle:
                return handle.read()


        def slurp_binary(path):
            return open(path, "rb").read()
        """)
        assert box.active_rules() == []

    def test_path_write_text_flagged(self, box):
        box.write("cell.py", """
        from pathlib import Path


        def dump(path, text):
            Path(path).write_text(text)
        """)
        assert box.active_rules() == ["det-write"]

    def test_path_open_write_mode_flagged(self, box):
        box.write("cell.py", """
        from pathlib import Path


        def appender(path):
            return Path(path).open("a")
        """)
        assert box.active_rules() == ["det-write"]

    def test_path_open_read_mode_is_clean(self, box):
        box.write("cell.py", """
        from pathlib import Path


        def reader(path):
            return Path(path).open("r")
        """)
        assert box.active_rules() == []

    def test_metrics_writer_is_sanctioned(self, box):
        box.write("repro/__init__.py", "")
        box.write("repro/obs/__init__.py", "")
        box.write("repro/obs/metrics.py", """
        def emit(path, line):
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line + "\\n")
        """)
        assert box.active_rules() == []

    def test_trace_serialisation_is_sanctioned(self, box):
        box.write("repro/__init__.py", "")
        box.write("repro/trace/__init__.py", "")
        box.write("repro/trace/stream.py", """
        def write_trace(path, lines):
            with open(path, "w") as handle:
                handle.writelines(lines)
        """)
        assert box.active_rules() == []
