"""oracle-leak: ground-truth reads on non-oracle predict() paths."""

from __future__ import annotations

from tests.lint.conftest import HONEST_PREDICTOR


def _leaky(field: str) -> str:
    return f"""
    from repro.predictors.base import MDPredictor, Prediction, PredictionKind


    class Leaky(MDPredictor):
        def predict(self, uop):
            if uop.{field}:
                return Prediction(PredictionKind.MDP, distance=1)
            return Prediction(PredictionKind.NO_DEP)

        def train(self, uop, prediction, actual):
            pass
    """


class TestOracleLeak:
    def test_each_ground_truth_field_is_caught(self, box):
        for field in ("bypass", "store_distance", "dep_store_seq",
                      "has_dependence"):
            path = box.write(f"leak_{field}.py", _leaky(field))
            findings = [
                f for f in box.lint()
                if f.rule == "oracle-leak" and f.path == str(path)
            ]
            assert findings, f"read of uop.{field} was not caught"
            assert field in findings[0].message

    def test_honest_predictor_is_clean(self, box):
        box.write("honest.py", HONEST_PREDICTOR)
        assert box.active_rules() == []

    def test_train_time_reads_are_legal(self, box):
        box.write("trainer.py", """
        from repro.predictors.base import MDPredictor, Prediction, PredictionKind


        class Trainer(MDPredictor):
            def predict(self, uop):
                return Prediction(PredictionKind.NO_DEP)

            def train(self, uop, prediction, actual):
                if uop.has_dependence and uop.bypass.is_bypassable:
                    self.hits = uop.dep_store_seq
        """)
        assert box.active_rules() == []

    def test_leak_through_alias_and_helper_call(self, box):
        box.write("sneaky.py", """
        from repro.predictors.base import MDPredictor, Prediction, PredictionKind


        def peek(op):
            return op.dep_store_seq


        class Sneaky(MDPredictor):
            def predict(self, uop):
                load = uop
                return self._indirect(load)

            def _indirect(self, candidate):
                return peek(candidate)

            def train(self, uop, prediction, actual):
                pass
        """)
        findings = [f for f in box.lint() if f.rule == "oracle-leak"]
        assert len(findings) == 1
        assert "op.dep_store_seq" in findings[0].message
        assert findings[0].symbol == "sneaky:peek"

    def test_is_oracle_marker_exempts_class_and_subclasses(self, box):
        box.write("oracles.py", """
        from repro.predictors.base import MDPredictor, Prediction, PredictionKind


        class MyOracle(MDPredictor):
            is_oracle = True

            def predict(self, uop):
                return Prediction(
                    PredictionKind.MDP, distance=uop.store_distance,
                    store_seq=uop.dep_store_seq,
                ) if uop.has_dependence else Prediction(PredictionKind.NO_DEP)

            def train(self, uop, prediction, actual):
                pass


        class DerivedOracle(MyOracle):
            def predict(self, uop):
                if uop.bypass.is_bypassable:
                    return Prediction(PredictionKind.SMB, distance=1)
                return super().predict(uop)
        """)
        assert box.active_rules() == []

    def test_entry_attributes_sharing_names_are_not_flagged(self, box):
        # A table entry's own `bypass` counter must not trip the rule.
        box.write("entries.py", """
        from repro.predictors.base import MDPredictor, Prediction, PredictionKind


        class Tabled(MDPredictor):
            def predict(self, uop):
                entry = self.table.get(uop.pc)
                if entry is not None and entry.bypass >= 3:
                    return Prediction(PredictionKind.SMB, distance=entry.distance)
                return Prediction(PredictionKind.NO_DEP)

            def train(self, uop, prediction, actual):
                pass
        """)
        assert box.active_rules() == []

    def test_suppression_pragma(self, box):
        box.write("allowed.py", """
        from repro.predictors.base import MDPredictor, Prediction, PredictionKind


        class Allowed(MDPredictor):
            def predict(self, uop):
                # repro-lint: allow(oracle-leak) -- documentation example
                dep = uop.has_dependence
                return Prediction(PredictionKind.MDP, distance=1) \\
                    if dep else Prediction(PredictionKind.NO_DEP)

            def train(self, uop, prediction, actual):
                pass
        """)
        findings = [f for f in box.lint() if f.rule == "oracle-leak"]
        assert len(findings) == 1
        assert findings[0].suppressed
        assert not findings[0].active
        assert findings[0].justification == "documentation example"
