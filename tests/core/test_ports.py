"""Tests for the issue-port contention model."""

import pytest

from repro.core.ports import PortPool, PortSet


class TestPortPool:
    def test_single_port_serialises(self):
        pool = PortPool("alu", 1)
        assert pool.issue(0) == 0
        assert pool.issue(0) == 1
        assert pool.issue(0) == 2

    def test_multiple_ports_parallel(self):
        pool = PortPool("alu", 3)
        assert pool.issue(5) == 5
        assert pool.issue(5) == 5
        assert pool.issue(5) == 5
        assert pool.issue(5) == 6  # fourth op waits

    def test_ready_time_respected(self):
        pool = PortPool("alu", 2)
        assert pool.issue(10) == 10
        assert pool.issue(3) == 3  # other port free earlier

    def test_unpipelined_occupancy(self):
        pool = PortPool("div", 1)
        assert pool.issue(0, occupancy=12) == 0
        assert pool.issue(0) == 12

    def test_picks_earliest_free_port(self):
        pool = PortPool("alu", 2)
        pool.issue(0, occupancy=10)   # port 0 busy until 10
        pool.issue(0, occupancy=2)    # port 1 busy until 2
        assert pool.issue(0) == 2

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            PortPool("none", 0)

    def test_reset(self):
        pool = PortPool("alu", 1)
        pool.issue(0, occupancy=100)
        pool.reset()
        assert pool.issue(0) == 0


class TestPortSet:
    def test_pools_independent(self):
        ports = PortSet(1, 1, 1, 1)
        assert ports.load.issue(0) == 0
        assert ports.alu.issue(0) == 0  # different pool, no contention
        assert ports.load.issue(0) == 1

    def test_reset_all(self):
        ports = PortSet(1, 1, 1, 1)
        ports.load.issue(0, occupancy=50)
        ports.fp.issue(0, occupancy=50)
        ports.reset()
        assert ports.load.issue(0) == 0
        assert ports.fp.issue(0) == 0
