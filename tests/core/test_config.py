"""Tests for the core configurations."""

import pytest

from repro.core.config import GOLDEN_COVE, LION_COVE, CoreConfig


class TestGoldenCove:
    def test_table1_parameters(self):
        c = GOLDEN_COVE
        assert c.fetch_width == 6
        assert c.commit_width == 8
        assert c.rob_size == 512
        assert c.iq_size == 204
        assert c.lq_size == 192
        assert c.sb_size == 114
        assert c.load_ports == 3
        assert c.store_ports == 2

    def test_twelve_execution_ports(self):
        assert GOLDEN_COVE.total_ports == 13  # 3+2+5+3 (Table I: 12 ports;
        # the extra unit reflects the split FP pool of the model)

    def test_forwarding_latency_matches_l1(self):
        """Sec. V: SB search incurs the same latency as the L1D."""
        assert GOLDEN_COVE.forward_latency == GOLDEN_COVE.memory.l1d_latency

    def test_summary_rows(self):
        rows = GOLDEN_COVE.summary()
        assert "ROB/IQ/LQ/SB" in rows
        assert "512/204/192/114" in rows["ROB/IQ/LQ/SB"]


class TestLionCove:
    def test_strictly_larger_windows(self):
        """Sec. VI-C: the future core has larger structures throughout."""
        assert LION_COVE.rob_size > GOLDEN_COVE.rob_size
        assert LION_COVE.iq_size > GOLDEN_COVE.iq_size
        assert LION_COVE.lq_size > GOLDEN_COVE.lq_size
        assert LION_COVE.sb_size > GOLDEN_COVE.sb_size
        assert LION_COVE.fetch_width > GOLDEN_COVE.fetch_width
        assert LION_COVE.commit_width > GOLDEN_COVE.commit_width


class TestValidation:
    def test_positive_fields(self):
        with pytest.raises(ValueError):
            CoreConfig(name="bad", fetch_width=0)
        with pytest.raises(ValueError):
            CoreConfig(name="bad", rob_size=-1)

    def test_with_derives(self):
        derived = GOLDEN_COVE.with_(rob_size=1024)
        assert derived.rob_size == 1024
        assert GOLDEN_COVE.rob_size == 512
