"""Regression tests for the three measurement/accounting fixes.

Each test fails on the pre-fix pipeline:

* the consumer-wait metric counted *every* ALU/MUL/DIV/FP op with a
  source as a "load consumer" instead of only consumers of load values;
* ``StoreTiming.drain`` kept its provisional (over-long) value forever
  and loads happily forwarded from stores that had left the store
  buffer;
* (the warmup branch-MPKI fix is covered in ``test_warmup.py``).
"""

from repro.core.config import GOLDEN_COVE
from repro.core.lsu import StoreTiming, StoreWindow
from repro.core.pipeline import Pipeline
from repro.predictors.perfect import PerfectMDP
from repro.trace.uop import BypassClass, MicroOp, OpClass


def alu(seq, srcs=()):
    return MicroOp(seq, 0x400000 + 4 * seq, OpClass.ALU, srcs=tuple(srcs))


def div(seq, srcs=()):
    return MicroOp(seq, 0x400000 + 4 * seq, OpClass.DIV, srcs=tuple(srcs))


def store(seq, addr):
    return MicroOp(seq, 0x400800 + 4 * seq, OpClass.STORE,
                   address=addr, size=8)


def load(seq, addr, dep_store_seq=None, distance=0, addr_src=None):
    bypass = BypassClass.DIRECT if distance else BypassClass.NONE
    return MicroOp(seq, 0x400900 + 4 * seq, OpClass.LOAD, address=addr,
                   size=8, addr_src=addr_src, store_distance=distance,
                   dep_store_seq=dep_store_seq, bypass=bypass)


class TestConsumerWaitMetric:
    def test_only_load_consumers_counted(self):
        trace = [
            load(0, 0x1000),
            alu(1, srcs=(0,)),   # consumes the load: counted
            alu(2, srcs=(1,)),   # consumes an ALU value: NOT a load consumer
            alu(3, srcs=(2,)),
        ]
        stats = Pipeline(PerfectMDP()).run(trace)
        assert stats.load_consumers == 1

    def test_mixed_sources_count_once(self):
        trace = [
            load(0, 0x1000),
            alu(1),
            alu(2, srcs=(0, 1)),  # one load source among several: counted
        ]
        stats = Pipeline(PerfectMDP()).run(trace)
        assert stats.load_consumers == 1

    def test_load_consumer_waits_for_the_load(self):
        trace = [load(0, 0x1000), alu(1, srcs=(0,))]
        stats = Pipeline(PerfectMDP()).run(trace)
        assert stats.load_consumers == 1
        # An L1 miss-free load still takes several cycles past dispatch.
        assert stats.load_consumer_wait_cycles > 0


class TestSbDrainCutoff:
    def _trace(self, chain=12):
        """A store, a long DIV chain, then a dependent load whose address
        hangs off the chain — so it issues long after the store drained."""
        trace = [store(0, 0x2000), div(1)]
        for seq in range(2, chain + 1):
            trace.append(div(seq, srcs=(seq - 1,)))
        trace.append(load(chain + 1, 0x2000, dep_store_seq=0, distance=1,
                          addr_src=chain))
        return trace

    def test_late_load_reads_cache_not_sb(self):
        stats = Pipeline(PerfectMDP()).run(self._trace())
        assert stats.loads_forwarded == 0

    def test_pre_fix_behaviour_reachable_for_ab_comparison(self):
        config = GOLDEN_COVE.with_(enforce_sb_drain=False)
        stats = Pipeline(PerfectMDP(), config=config).run(self._trace())
        assert stats.loads_forwarded == 1

    def test_timely_load_still_forwards(self):
        trace = [store(0, 0x2000),
                 load(1, 0x2000, dep_store_seq=0, distance=1)]
        stats = Pipeline(PerfectMDP()).run(trace)
        assert stats.loads_forwarded == 1

    def test_drain_refined_from_commit_cycle(self):
        pipeline = Pipeline(PerfectMDP())
        pipeline.run(self._trace())
        timing = pipeline._stores.by_seq(0)
        commit = pipeline._commit_times[0]
        assert timing.drain == commit + GOLDEN_COVE.sb_drain_latency


class TestStoreWindowEvictions:
    def _timing(self, seq):
        return StoreTiming(seq=seq, pc=0x400200, addr_resolve=10,
                           data_ready=12, drain=100, branch_count=0)

    def test_eviction_counter(self):
        window = StoreWindow(capacity=2)
        for seq in range(5):
            window.add(self._timing(seq))
        assert window.evictions == 3
        assert len(window) == 2

    def test_no_evictions_below_capacity(self):
        window = StoreWindow(capacity=4)
        for seq in range(3):
            window.add(self._timing(seq))
        assert window.evictions == 0

    def test_reset_clears_but_keeps_lifetime_count(self):
        window = StoreWindow(capacity=1)
        window.add(self._timing(0))
        window.add(self._timing(1))
        assert window.evictions == 1
        window.reset()
        assert len(window) == 0
        assert window.by_distance(1) is None
