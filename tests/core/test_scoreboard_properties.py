"""Differential property tests for the batched scoreboards.

:mod:`repro.core.scoreboard` replaces the scalar engine's unbounded lists
and dict-of-dataclasses with fixed rings and per-seq columns; these tests
pin each replacement to the obvious python oracle it stands in for:

* :class:`RingWindow` of capacity ``k``  ==  ``history[-k]`` on a list,
* :class:`StoreScoreboard`               ==  a dict of per-store records,
* :class:`SeqScoreboard`                 ==  the lists it was built from.

All hypothesis tests run ``derandomize=True`` so the explored example
sequence is a pure function of the test source (det-unseeded-rng applies
in spirit to the test tier too: no run-to-run variance).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scoreboard import RingWindow, SeqScoreboard, StoreScoreboard

#: Values pushed through the windows: cycle counts are small non-negative
#: ints, but nothing in the structures requires that — use a wider band.
values_st = st.integers(min_value=-(2**40), max_value=2**40)


class TestRingWindow:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RingWindow(0)
        with pytest.raises(ValueError):
            RingWindow(-3)

    @given(capacity=st.integers(min_value=1, max_value=9),
           stream=st.lists(values_st, max_size=64))
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_release_point_is_history_minus_capacity(self, capacity, stream):
        # The scalar engines read ``timeline[seq - k]`` / ``deque[-k]``;
        # the ring must return exactly that value at every step.
        ring = RingWindow(capacity)
        oracle = []
        for value in stream:
            ring.push(value)
            oracle.append(value)
            if len(oracle) < capacity:
                assert ring.release_point() is None
            else:
                assert ring.release_point() == oracle[-capacity]

    @given(capacity=st.integers(min_value=1, max_value=9),
           stream=st.lists(values_st, max_size=64))
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_history_is_live_window_oldest_first(self, capacity, stream):
        ring = RingWindow(capacity)
        oracle = []
        for value in stream:
            ring.push(value)
            oracle.append(value)
            live = oracle[-capacity:]
            assert ring.history().tolist() == live
            assert len(ring) == len(live)
            assert ring.total_pushed == len(oracle)

    def test_release_point_returns_native_int(self):
        # The timing loop does arithmetic on the returned value; a numpy
        # scalar leaking out would contaminate downstream ints.
        ring = RingWindow(2)
        ring.push(3)
        ring.push(4)
        assert type(ring.release_point()) is int


class TestStoreScoreboard:
    @given(data=st.data(),
           num_uops=st.integers(min_value=1, max_value=48))
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_matches_dict_oracle(self, data, num_uops):
        # The scalar engine keeps StoreTiming dataclasses in a dict keyed
        # by store seq; the columns must replay record/overwrite/read
        # exactly, with -1 standing in for "never recorded".
        board = StoreScoreboard(num_uops)
        oracle = {}
        records = data.draw(st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_uops - 1),
                st.integers(min_value=0, max_value=2**20),
                st.integers(min_value=0, max_value=2**20),
                st.integers(min_value=0, max_value=2**20),
                st.integers(min_value=0, max_value=512),
            ),
            max_size=32,
        ))
        for seq, addr_resolve, data_ready, drain, branches in records:
            board.record(seq, addr_resolve, data_ready, drain, branches)
            oracle[seq] = (addr_resolve, data_ready, drain, branches)

        for seq in range(num_uops):
            expected = oracle.get(seq, (-1, -1, -1, -1))
            got = (int(board.addr_resolve[seq]), int(board.data_ready[seq]),
                   int(board.drain[seq]), int(board.branch_count[seq]))
            assert got == expected
            # forward_ready is the store-to-load forwarding gate: the
            # later of address resolution and data readiness.
            assert board.forward_ready(seq) == max(expected[0], expected[1])


class TestSeqScoreboard:
    @given(n=st.integers(min_value=0, max_value=40), data=st.data())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_round_trips_source_lists(self, n, data):
        columns = [
            data.draw(st.lists(values_st, min_size=n, max_size=n))
            for _ in range(5)
        ]
        board = SeqScoreboard(*columns)
        assert len(board) == n
        for name, source in zip(
                ("fetch", "dispatch", "issue", "complete", "commit"),
                columns):
            exported = getattr(board, name)
            assert exported.dtype == np.int64
            assert exported.tolist() == source
