"""Tests for the pipeline's warmed-measurement mode."""

import pytest

from repro.core.pipeline import Pipeline
from repro.predictors.mascot import Mascot
from repro.predictors.perfect import PerfectMDP

from tests.conftest import small_trace


class TestMeasureFrom:
    def test_counts_only_measured_region(self):
        trace = small_trace("exchange2", 6_000)
        stats = Pipeline(PerfectMDP()).run(trace, measure_from=2_000)
        assert stats.instructions == 4_000
        loads_measured = sum(
            1 for u in trace[2_000:] if u.is_load
        )
        assert stats.loads == loads_measured
        assert stats.accuracy.loads == loads_measured

    def test_cycles_exclude_warmup(self):
        trace = small_trace("exchange2", 6_000)
        full = Pipeline(PerfectMDP()).run(trace)
        warmed = Pipeline(PerfectMDP()).run(trace, measure_from=2_000)
        assert warmed.cycles < full.cycles

    def test_zero_warmup_equals_plain_run(self):
        trace = small_trace("exchange2", 4_000)
        a = Pipeline(Mascot()).run(trace)
        b = Pipeline(Mascot()).run(trace, measure_from=0)
        assert a.cycles == b.cycles
        assert a.loads == b.loads

    def test_warmed_ipc_at_least_cold(self):
        """Warmup absorbs cold caches/predictors, so the measured region's
        IPC should not be lower than the whole-trace IPC."""
        trace = small_trace("gcc1", 12_000)
        full = Pipeline(Mascot()).run(trace)
        warmed = Pipeline(Mascot()).run(trace, measure_from=4_000)
        assert warmed.ipc >= full.ipc * 0.95

    def test_bad_boundary_rejected(self):
        trace = small_trace("exchange2", 1_000)
        with pytest.raises(ValueError):
            Pipeline(PerfectMDP()).run(trace, measure_from=-1)
        with pytest.raises(ValueError):
            Pipeline(PerfectMDP()).run(trace, measure_from=2_000)

    def test_full_warmup_is_degenerate_but_valid(self):
        trace = small_trace("exchange2", 1_000)
        stats = Pipeline(PerfectMDP()).run(trace, measure_from=1_000)
        assert stats.instructions == 0

    def test_predictor_still_trains_during_warmup(self):
        """Mispredictions in the measured region should be fewer after a
        warmup prefix than from a cold start over the same region."""
        trace = small_trace("perlbench1", 24_000)
        warmed = Pipeline(Mascot()).run(trace, measure_from=12_000)
        cold_like = Pipeline(Mascot()).run(trace)
        # The warmed measured-region misprediction count must be well below
        # the whole-run count (which includes cold-start errors).
        assert (warmed.accuracy.mispredictions
                < cold_like.accuracy.mispredictions)
