"""Tests for the pipeline's warmed-measurement mode."""

import pytest

from repro.core.pipeline import Pipeline
from repro.predictors.mascot import Mascot
from repro.predictors.perfect import PerfectMDP

from tests.conftest import small_trace


class TestMeasureFrom:
    def test_counts_only_measured_region(self):
        trace = small_trace("exchange2", 6_000)
        stats = Pipeline(PerfectMDP()).run(trace, measure_from=2_000)
        assert stats.instructions == 4_000
        loads_measured = sum(
            1 for u in trace[2_000:] if u.is_load
        )
        assert stats.loads == loads_measured
        assert stats.accuracy.loads == loads_measured

    def test_cycles_exclude_warmup(self):
        trace = small_trace("exchange2", 6_000)
        full = Pipeline(PerfectMDP()).run(trace)
        warmed = Pipeline(PerfectMDP()).run(trace, measure_from=2_000)
        assert warmed.cycles < full.cycles

    def test_zero_warmup_equals_plain_run(self):
        trace = small_trace("exchange2", 4_000)
        a = Pipeline(Mascot()).run(trace)
        b = Pipeline(Mascot()).run(trace, measure_from=0)
        assert a.cycles == b.cycles
        assert a.loads == b.loads

    def test_warmed_ipc_at_least_cold(self):
        """Warmup absorbs cold caches/predictors, so the measured region's
        IPC should not be lower than the whole-trace IPC."""
        trace = small_trace("gcc1", 12_000)
        full = Pipeline(Mascot()).run(trace)
        warmed = Pipeline(Mascot()).run(trace, measure_from=4_000)
        assert warmed.ipc >= full.ipc * 0.95

    def test_bad_boundary_rejected(self):
        trace = small_trace("exchange2", 1_000)
        with pytest.raises(ValueError):
            Pipeline(PerfectMDP()).run(trace, measure_from=-1)
        with pytest.raises(ValueError):
            Pipeline(PerfectMDP()).run(trace, measure_from=2_000)

    def test_full_warmup_is_degenerate_but_valid(self):
        trace = small_trace("exchange2", 1_000)
        stats = Pipeline(PerfectMDP()).run(trace, measure_from=1_000)
        assert stats.instructions == 0

    def test_branch_stats_cover_measured_window_only(self):
        """Regression: branch mispredictions were copied from the full
        run while ``stats.branches`` counted only measured uops, so
        warmed MPKI mixed windows.  The branch predictor is timing-
        independent (it sees only the (pc, taken) stream), so the
        measured-window counts must equal full-run minus prefix-run."""
        trace = small_trace("perlbench1", 16_000)
        boundary = 8_000
        full = Pipeline(PerfectMDP()).run(trace)
        prefix = Pipeline(PerfectMDP()).run(trace[:boundary])
        warmed = Pipeline(PerfectMDP()).run(trace, measure_from=boundary)
        # The warmup prefix must itself contain mispredictions, otherwise
        # this test cannot distinguish fixed from broken accounting.
        assert prefix.branch_mispredictions > 0
        assert warmed.branch_mispredictions == (
            full.branch_mispredictions - prefix.branch_mispredictions
        )
        assert warmed.indirect_mispredictions == (
            full.indirect_mispredictions - prefix.indirect_mispredictions
        )
        assert warmed.branch_mispredictions < full.branch_mispredictions

    def test_branch_mpki_uses_consistent_window(self):
        trace = small_trace("perlbench1", 16_000)
        warmed = Pipeline(PerfectMDP()).run(trace, measure_from=8_000)
        # MPKI must be computable from same-window numerator/denominator:
        # a full-run numerator over a half-run denominator would roughly
        # double it.
        assert warmed.branch_mpki == (
            1000.0 * warmed.branch_mispredictions / warmed.instructions
        )

    def test_degenerate_full_warmup_has_no_mispredictions(self):
        trace = small_trace("perlbench1", 4_000)
        stats = Pipeline(PerfectMDP()).run(trace, measure_from=4_000)
        assert stats.branch_mispredictions == 0
        assert stats.indirect_mispredictions == 0

    def test_predictor_still_trains_during_warmup(self):
        """Mispredictions in the measured region should be fewer after a
        warmup prefix than from a cold start over the same region."""
        trace = small_trace("perlbench1", 24_000)
        warmed = Pipeline(Mascot()).run(trace, measure_from=12_000)
        cold_like = Pipeline(Mascot()).run(trace)
        # The warmed measured-region misprediction count must be well below
        # the whole-run count (which includes cold-start errors).
        assert (warmed.accuracy.mispredictions
                < cold_like.accuracy.mispredictions)
