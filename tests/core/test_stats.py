"""Tests for PipelineStats derived metrics."""

import pytest

from repro.analysis.accuracy import AccuracyStats
from repro.core.stats import PipelineStats


class TestDerivedMetrics:
    def test_ipc(self):
        stats = PipelineStats(instructions=1000, cycles=500)
        assert stats.ipc == pytest.approx(2.0)

    def test_ipc_zero_cycles(self):
        assert PipelineStats(instructions=10, cycles=0).ipc == 0.0

    def test_branch_mpki(self):
        stats = PipelineStats(instructions=10_000, cycles=1,
                              branch_mispredictions=25)
        assert stats.branch_mpki == pytest.approx(2.5)

    def test_branch_mpki_no_instructions(self):
        assert PipelineStats().branch_mpki == 0.0

    def test_squash_pki(self):
        stats = PipelineStats(instructions=1000, cycles=1,
                              memory_squashes=3)
        assert stats.squash_pki == pytest.approx(3.0)

    def test_mean_consumer_wait(self):
        stats = PipelineStats(load_consumer_wait_cycles=100,
                              load_consumers=25)
        assert stats.mean_consumer_wait == pytest.approx(4.0)

    def test_mean_consumer_wait_empty(self):
        assert PipelineStats().mean_consumer_wait == 0.0


class TestAsDict:
    def test_contains_all_reported_metrics(self):
        stats = PipelineStats(instructions=100, cycles=50, loads=20,
                              stores=10, branches=15)
        d = stats.as_dict()
        assert d["instructions"] == 100
        assert d["ipc"] == pytest.approx(2.0)
        assert d["loads"] == 20
        assert "mdp_mispredictions" in d
        assert "mean_consumer_wait" in d

    def test_accuracy_embedded(self):
        stats = PipelineStats()
        assert isinstance(stats.accuracy, AccuracyStats)
        assert stats.as_dict()["mdp_mispredictions"] == 0
