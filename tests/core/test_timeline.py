"""Tests for pipeline timeline capture and rendering."""

import pytest

from repro.core.pipeline import Pipeline
from repro.core.timeline import Timeline, UopTiming
from repro.predictors.perfect import PerfectMDP

from tests.conftest import small_trace


def recorded_pipeline(n=4000):
    trace = small_trace("exchange2", n)
    pipeline = Pipeline(PerfectMDP(), record_timeline=True)
    pipeline.run(trace)
    return trace, pipeline


class TestUopTiming:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            UopTiming(seq=0, fetch=10, dispatch=5, issue=6, complete=7,
                      commit=8)
        with pytest.raises(ValueError):
            UopTiming(seq=0, fetch=1, dispatch=2, issue=3, complete=4,
                      commit=4)  # commit must be after complete

    def test_latency(self):
        t = UopTiming(seq=0, fetch=10, dispatch=20, issue=25, complete=30,
                      commit=31)
        assert t.latency == 21


class TestCapture:
    def test_disabled_by_default(self):
        trace = small_trace("exchange2", 2000)
        pipeline = Pipeline(PerfectMDP())
        pipeline.run(trace)
        with pytest.raises(RuntimeError):
            pipeline.timeline()

    def test_records_every_uop(self):
        trace, pipeline = recorded_pipeline(3000)
        timeline = pipeline.timeline(trace)
        assert len(timeline) == len(trace)

    def test_event_order_holds_for_all_uops(self):
        trace, pipeline = recorded_pipeline(4000)
        timeline = pipeline.timeline()
        for i in range(len(timeline)):
            t = timeline[i]
            assert t.fetch <= t.dispatch <= t.issue <= t.complete < t.commit

    def test_trace_length_mismatch_rejected(self):
        trace, pipeline = recorded_pipeline(2000)
        with pytest.raises(ValueError):
            pipeline.timeline(trace[:100])


class TestAnalysis:
    def test_mean_latency_positive(self):
        _, pipeline = recorded_pipeline(3000)
        assert pipeline.timeline().mean_latency() > 0

    def test_slowest_sorted(self):
        _, pipeline = recorded_pipeline(3000)
        slowest = pipeline.timeline().slowest(5)
        assert len(slowest) == 5
        latencies = [t.latency for t in slowest]
        assert latencies == sorted(latencies, reverse=True)

    def test_empty_timeline(self):
        assert Timeline([]).mean_latency() == 0.0


class TestRender:
    def test_renders_window(self):
        trace, pipeline = recorded_pipeline(3000)
        text = pipeline.timeline(trace).render(100, 110)
        lines = text.splitlines()
        assert len(lines) == 11  # header + 10 uops
        assert "|" in lines[1]
        assert "load" in text or "alu" in text

    def test_contains_stage_glyphs(self):
        _, pipeline = recorded_pipeline(3000)
        text = pipeline.timeline().render(0, 20)
        assert "F" in text and "C" in text

    def test_bad_window_rejected(self):
        _, pipeline = recorded_pipeline(1000)
        timeline = pipeline.timeline()
        with pytest.raises(ValueError):
            timeline.render(10, 10)
        with pytest.raises(ValueError):
            timeline.render(-1, 5)
        with pytest.raises(ValueError):
            timeline.render(0, 10_000_000)
