"""Tests for the out-of-order timing model."""

import pytest

from repro.core.config import GOLDEN_COVE, LION_COVE
from repro.core.pipeline import Pipeline
from repro.predictors.mascot import Mascot
from repro.predictors.perfect import PerfectMDP, PerfectMDPSMB
from repro.trace.uop import BypassClass, MicroOp, OpClass

from tests.conftest import small_trace


def alu(seq, srcs=()):
    return MicroOp(seq, 0x400000 + 4 * seq, OpClass.ALU, srcs=tuple(srcs))


def run(trace, predictor=None, config=GOLDEN_COVE):
    pipeline = Pipeline(predictor or PerfectMDP(), config=config)
    return pipeline.run(trace)


class TestBasicTiming:
    def test_empty_chain_is_fast(self):
        """Independent ALU ops are bounded by width, not latency."""
        trace = [alu(i) for i in range(4000)]
        stats = run(trace)
        assert stats.ipc > 3.0

    def test_serial_chain_is_slow(self):
        """A fully serial dependency chain commits ~1 op per cycle."""
        trace = [alu(0)] + [alu(i, srcs=(i - 1,)) for i in range(1, 2000)]
        stats = run(trace)
        assert stats.ipc < 1.2

    def test_ipc_counts_all_instructions(self):
        trace = [alu(i) for i in range(100)]
        stats = run(trace)
        assert stats.instructions == 100
        assert stats.cycles > 0

    def test_div_slower_than_alu(self):
        serial_alu = [alu(0)] + [alu(i, srcs=(i - 1,)) for i in range(1, 500)]
        divs = [MicroOp(0, 0x400000, OpClass.DIV)] + [
            MicroOp(i, 0x400000 + 4 * i, OpClass.DIV, srcs=(i - 1,))
            for i in range(1, 500)
        ]
        assert run(divs).ipc < run(serial_alu).ipc


class TestWindows:
    def test_rob_limits_runahead(self):
        """A long-latency op at the head must eventually stall dispatch."""
        # One serial chain of divides + many independent ALUs behind it.
        trace = [MicroOp(0, 0x400000, OpClass.DIV)]
        for i in range(1, 20):
            trace.append(MicroOp(i, 0x400000, OpClass.DIV, srcs=(i - 1,)))
        trace.extend(alu(i) for i in range(20, 3000))
        small_rob = GOLDEN_COVE.with_(rob_size=64)
        big_rob = GOLDEN_COVE.with_(rob_size=2048)
        assert run(trace, config=small_rob).cycles >= run(
            trace, config=big_rob).cycles

    def test_wider_core_faster(self):
        trace = small_trace("x264", 15_000)
        narrow = run(trace, Mascot())
        wide = run(trace, Mascot(), config=LION_COVE)
        assert wide.ipc >= narrow.ipc


class TestBranches:
    def test_branches_counted(self):
        trace = small_trace("gcc1", 10_000)
        stats = run(trace)
        expected = sum(1 for u in trace if u.is_branch)
        assert stats.branches == expected

    def test_mispredictions_cost_cycles(self):
        """An unpredictable branch stream must run slower than a
        predictable one of identical structure."""
        import random
        rng = random.Random(0)

        def branch_trace(predictable):
            trace = []
            for i in range(4000):
                taken = (i % 2 == 0) if predictable else rng.random() < 0.5
                trace.append(MicroOp(i, 0x400100, OpClass.BRANCH_COND,
                                     taken=taken, target=0x400200))
            return trace

        fast = run(branch_trace(True))
        slow = run(branch_trace(False))
        assert slow.cycles > fast.cycles
        assert slow.branch_mispredictions > fast.branch_mispredictions


class TestLoadsAndStores:
    def _pair_trace(self, n_pairs=400, gap=3, bypass=BypassClass.DIRECT,
                    load_size=8, load_offset=0):
        """store -> filler ALUs -> dependent load, repeated."""
        trace = []
        seq = 0
        store_seqs = []
        for p in range(n_pairs):
            addr = 0x1000 + 64 * (p % 8)
            trace.append(MicroOp(seq, 0x400800, OpClass.STORE,
                                 address=addr, size=8))
            store_seqs.append(seq)
            seq += 1
            for _ in range(gap):
                trace.append(alu(seq))
                seq += 1
            trace.append(MicroOp(
                seq, 0x400900, OpClass.LOAD,
                address=addr + load_offset, size=load_size,
                store_distance=1, dep_store_seq=store_seqs[-1],
                bypass=bypass,
            ))
            seq += 1
        return trace

    def test_forwarding_counted(self):
        stats = run(self._pair_trace())
        assert stats.loads_forwarded > 300

    def test_bypass_counted_with_smb_oracle(self):
        stats = run(self._pair_trace(), predictor=PerfectMDPSMB())
        assert stats.loads_bypassed > 300
        assert stats.memory_squashes == 0

    def test_perfect_mdp_never_squashes(self, perlbench_trace):
        stats = run(perlbench_trace, PerfectMDP())
        assert stats.memory_squashes == 0

    def test_perfect_smb_never_squashes(self, perlbench_trace):
        stats = run(perlbench_trace, PerfectMDPSMB())
        assert stats.memory_squashes == 0

    def test_smb_oracle_at_least_as_fast(self, perlbench_trace):
        mdp = run(perlbench_trace, PerfectMDP())
        smb = run(perlbench_trace, PerfectMDPSMB())
        assert smb.ipc >= mdp.ipc

    def test_loads_and_stores_counted(self, perlbench_trace):
        stats = run(perlbench_trace)
        assert stats.loads == sum(1 for u in perlbench_trace if u.is_load)
        assert stats.stores == sum(1 for u in perlbench_trace if u.is_store)

    def test_real_predictor_squashes_sometimes(self, perlbench_trace):
        stats = run(perlbench_trace, Mascot())
        assert stats.memory_squashes > 0

    def test_accuracy_stats_attached(self, perlbench_trace):
        stats = run(perlbench_trace, Mascot())
        assert stats.accuracy.loads == stats.loads
        assert stats.accuracy.instructions == stats.instructions


class TestSquashCosts:
    def test_missed_dependencies_cost_cycles(self):
        """A predictor that always says no-dep must squash and lose time
        relative to perfect MDP on a dependence-heavy trace."""
        from repro.predictors.base import MDPredictor, Prediction, PredictionKind

        class AlwaysNoDep(MDPredictor):
            name = "always-no-dep"

            def predict(self, uop):
                return Prediction(PredictionKind.NO_DEP)

            def train(self, uop, prediction, actual):
                pass

        trace = small_trace("perlbench1", 20_000)
        naive = run(trace, AlwaysNoDep())
        oracle = run(trace, PerfectMDP())
        assert naive.memory_squashes > 50
        assert naive.ipc < oracle.ipc


class TestStats:
    def test_consumer_wait_tracked(self, perlbench_trace):
        stats = run(perlbench_trace)
        assert stats.load_consumers > 0
        assert stats.mean_consumer_wait >= 0.0

    def test_as_dict_complete(self, perlbench_trace):
        stats = run(perlbench_trace, Mascot())
        d = stats.as_dict()
        for key in ("ipc", "cycles", "loads", "memory_squashes",
                    "loads_bypassed", "mdp_mispredictions"):
            assert key in d

    def test_bypass_reduces_consumer_wait(self):
        """Sec. VI-A: bypassing cuts the issue-stage wait of load
        consumers (perlbench2: 38.7 -> 15.7 cycles)."""
        trace = small_trace("perlbench2", 20_000)
        mdp = run(trace, PerfectMDP())
        smb = run(trace, PerfectMDPSMB())
        assert smb.mean_consumer_wait < mdp.mean_consumer_wait


class TestSingleUse:
    def test_second_run_rejected(self):
        trace = [alu(i) for i in range(100)]
        pipeline = Pipeline(PerfectMDP())
        pipeline.run(trace)
        with pytest.raises(RuntimeError):
            pipeline.run(trace)
