"""Tests for the store timing window."""

import pytest

from repro.core.lsu import StoreTiming, StoreWindow


def timing(seq, addr_resolve=10, data_ready=12):
    return StoreTiming(seq=seq, pc=0x400200, addr_resolve=addr_resolve,
                       data_ready=data_ready, drain=100, branch_count=0)


class TestStoreTiming:
    def test_forward_ready_is_max(self):
        t = timing(0, addr_resolve=10, data_ready=20)
        assert t.forward_ready == 20
        t = timing(0, addr_resolve=30, data_ready=20)
        assert t.forward_ready == 30


class TestStoreWindow:
    def test_by_seq(self):
        w = StoreWindow()
        w.add(timing(5))
        assert w.by_seq(5).seq == 5
        assert w.by_seq(6) is None
        assert w.by_seq(None) is None

    def test_by_distance(self):
        w = StoreWindow()
        for seq in (1, 2, 3):
            w.add(timing(seq))
        assert w.by_distance(1).seq == 3  # youngest
        assert w.by_distance(3).seq == 1
        assert w.by_distance(0) is None
        assert w.by_distance(4) is None

    def test_capacity_eviction(self):
        w = StoreWindow(capacity=2)
        for seq in (1, 2, 3):
            w.add(timing(seq))
        assert w.by_seq(1) is None
        assert w.by_seq(3) is not None
        assert len(w) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StoreWindow(capacity=0)

    def test_reset(self):
        w = StoreWindow()
        w.add(timing(1))
        w.reset()
        assert len(w) == 0
        assert w.by_seq(1) is None
