"""Tests for the saturating-counter Markov analysis (paper footnote 1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.markov import (
    drain_step_table,
    expected_drain_from_max,
    expected_drain_steps,
)


class TestPaperFootnote:
    def test_footnote_1_value(self):
        """'Using a 3-bit counter initialised to the maximum value, it
        would take an expected 1,625 predictions before the entry reaches
        confidence 0' (70 % dependent)."""
        assert expected_drain_from_max(3, 0.7) == pytest.approx(1625, rel=0.01)


class TestClosedFormCases:
    def test_pure_decrement(self):
        """p=0: the counter walks straight down."""
        assert expected_drain_steps(3, 0.0, 7) == pytest.approx(7.0)
        assert expected_drain_steps(3, 0.0, 3) == pytest.approx(3.0)

    def test_start_at_zero(self):
        assert expected_drain_steps(3, 0.7, 0) == 0.0

    def test_one_bit_counter(self):
        """E_1 = 1/(1-p) for a 1-bit counter (geometric sojourn at the
        saturated state)."""
        for p in (0.0, 0.3, 0.5, 0.9):
            assert expected_drain_steps(1, p, 1) == pytest.approx(
                1.0 / (1.0 - p)
            )

    def test_monotone_in_start_state(self):
        table = drain_step_table(3, 0.6)
        assert all(a < b for a, b in zip(table, table[1:]))

    def test_monotone_in_probability(self):
        assert (expected_drain_from_max(3, 0.5)
                < expected_drain_from_max(3, 0.6)
                < expected_drain_from_max(3, 0.7))

    def test_wider_counter_drains_slower(self):
        assert (expected_drain_from_max(2, 0.7)
                < expected_drain_from_max(3, 0.7)
                < expected_drain_from_max(4, 0.7))


class TestValidation:
    def test_p_one_rejected(self):
        with pytest.raises(ValueError):
            expected_drain_steps(3, 1.0, 7)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            expected_drain_steps(0, 0.5, 0)

    def test_bad_start(self):
        with pytest.raises(ValueError):
            expected_drain_steps(3, 0.5, 8)
        with pytest.raises(ValueError):
            expected_drain_steps(3, 0.5, -1)


@given(st.integers(min_value=1, max_value=3),
       st.floats(min_value=0.05, max_value=0.6))
@settings(max_examples=10, deadline=None)
def test_property_matches_simulation(bits, p):
    """The closed form agrees with Monte-Carlo simulation."""
    maximum = (1 << bits) - 1
    rng = random.Random(12345)
    trials = 3000
    total = 0
    for _ in range(trials):
        state, steps = maximum, 0
        while state > 0 and steps < 1_000_000:
            steps += 1
            if rng.random() < p:
                state = min(maximum, state + 1)
            else:
                state -= 1
        total += steps
    simulated = total / trials
    exact = expected_drain_from_max(bits, p)
    assert simulated == pytest.approx(exact, rel=0.15)
