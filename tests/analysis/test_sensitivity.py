"""Tests for the grid-sensitivity apparatus (Sec. IV-B)."""

import pytest

from repro.analysis.sensitivity import (
    GridPointResult,
    ParameterGrid,
    SensitivityStudy,
    StudyResults,
)
from repro.predictors.configs import MASCOT_DEFAULT


class TestParameterGrid:
    def test_cartesian_size(self):
        grid = ParameterGrid({"usefulness_bits": [2, 3],
                              "bypass_bits": [1, 2, 3]})
        assert len(grid) == 6
        assert len(list(grid.points())) == 6

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            ParameterGrid({"not_a_field": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"usefulness_bits": []})
        with pytest.raises(ValueError):
            ParameterGrid({})

    def test_tuple_valued_axes(self):
        grid = ParameterGrid({
            "history_lengths": [(0, 2, 4, 8, 16, 32, 64, 128),
                                (0, 4, 8, 16, 32, 64, 128, 256)],
        })
        assert len(grid) == 2


class TestStudyResults:
    def _point(self, rate, kib, **params):
        return GridPointResult(
            parameters=params, config=MASCOT_DEFAULT,
            mispredictions=int(rate * 1000), false_dependencies=0,
            speculative_errors=0, loads=1000, storage_kib=kib,
        )

    def test_best_by_rate(self):
        results = StudyResults(points=[
            self._point(0.10, 14.0, a=1),
            self._point(0.05, 14.0, a=2),
        ])
        assert results.best().parameters == {"a": 2}

    def test_storage_breaks_ties(self):
        results = StudyResults(points=[
            self._point(0.05, 14.0, a=1),
            self._point(0.05, 10.0, a=2),
        ])
        assert results.best().parameters == {"a": 2}

    def test_pareto_front(self):
        results = StudyResults(points=[
            self._point(0.05, 14.0, a=1),   # accurate, big
            self._point(0.08, 10.0, a=2),   # smaller, worse
            self._point(0.09, 12.0, a=3),   # dominated by both? bigger AND
                                            # worse than a=2 -> excluded
        ])
        front = results.pareto_front()
        assert {p.parameters["a"] for p in front} == {1, 2}

    def test_empty_best_raises(self):
        with pytest.raises(ValueError):
            StudyResults().best()


class TestSensitivityStudy:
    def test_small_grid_runs(self):
        grid = ParameterGrid({"usefulness_bits": [2, 3]})
        study = SensitivityStudy(grid, benchmarks=["exchange2"])
        results = study.run(num_uops=5_000)
        assert len(results.points) == 2
        for point in results.points:
            assert point.loads > 0
            assert point.storage_kib > 0

    def test_paper_default_counters_competitive(self):
        """The paper's 3-bit usefulness / 2-bit bypass choice should not be
        dominated by trivially smaller counters on a dependence-rich mix."""
        grid = ParameterGrid({"usefulness_bits": [1, 3]})
        study = SensitivityStudy(grid, benchmarks=["perlbench1"])
        results = study.run(num_uops=20_000)
        by_bits = {p.parameters["usefulness_bits"]: p
                   for p in results.points}
        assert (by_bits[3].misprediction_rate
                <= by_bits[1].misprediction_rate * 1.2)
