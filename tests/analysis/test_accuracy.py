"""Tests for outcome classification (the Fig. 5 decision tree)."""

import pytest

from repro.analysis.accuracy import (
    AccuracyStats,
    OutcomeKind,
    classify,
)
from repro.predictors.base import ActualOutcome, Prediction, PredictionKind
from repro.trace.uop import BypassClass


def nodep_pred():
    return Prediction(PredictionKind.NO_DEP)


def mdp_pred(distance=3):
    return Prediction(PredictionKind.MDP, distance=distance)


def smb_pred(distance=3):
    return Prediction(PredictionKind.SMB, distance=distance)


def actual_dep(distance=3, bypass=BypassClass.DIRECT):
    return ActualOutcome(distance=distance, store_seq=1, bypass=bypass)


def actual_none():
    return ActualOutcome(distance=0, store_seq=None, bypass=BypassClass.NONE)


class TestClassification:
    def test_correct_nodep(self):
        out = classify(nodep_pred(), actual_none())
        assert out.kind is OutcomeKind.CORRECT_NODEP
        assert not out.kind.is_misprediction

    def test_missed_dependence(self):
        out = classify(nodep_pred(), actual_dep())
        assert out.kind is OutcomeKind.MISSED_DEP
        assert out.kind.is_speculative_error
        assert out.kind.causes_squash
        assert not out.kind.is_false_dependence

    def test_correct_mdp(self):
        out = classify(mdp_pred(3), actual_dep(3))
        assert out.kind is OutcomeKind.CORRECT_MDP
        assert out.store_match

    def test_false_dependence_mdp_no_squash(self):
        """Fig. 5: MDP + no conflict -> no squash, opportunity lost."""
        out = classify(mdp_pred(), actual_none())
        assert out.kind is OutcomeKind.FALSE_DEP_MDP
        assert out.kind.is_false_dependence
        assert not out.kind.causes_squash

    def test_false_dependence_smb_squashes(self):
        """Fig. 5: SMB + no dependence -> squash."""
        out = classify(smb_pred(), actual_none())
        assert out.kind is OutcomeKind.FALSE_DEP_SMB
        assert out.kind.is_false_dependence
        assert out.kind.causes_squash

    def test_wrong_store_mdp(self):
        out = classify(mdp_pred(3), actual_dep(7))
        assert out.kind is OutcomeKind.WRONG_STORE_MDP
        assert out.kind.causes_squash

    def test_wrong_store_smb(self):
        out = classify(smb_pred(3), actual_dep(7))
        assert out.kind is OutcomeKind.WRONG_STORE_SMB
        assert out.kind.causes_squash

    def test_correct_smb(self):
        out = classify(smb_pred(3), actual_dep(3, BypassClass.DIRECT))
        assert out.kind is OutcomeKind.CORRECT_SMB
        assert not out.kind.is_misprediction

    def test_smb_on_partial_overlap_squashes(self):
        out = classify(smb_pred(3), actual_dep(3, BypassClass.MDP_ONLY))
        assert out.kind is OutcomeKind.SMB_NOT_BYPASSABLE
        assert out.kind.causes_squash
        assert out.store_match

    def test_smb_on_offset_respects_hardware_classes(self):
        # Default hardware: no offset bypassing -> squash.
        out = classify(smb_pred(3), actual_dep(3, BypassClass.OFFSET))
        assert out.kind is OutcomeKind.SMB_NOT_BYPASSABLE
        # With offset-capable hardware it is correct.
        extended = frozenset({BypassClass.DIRECT, BypassClass.NO_OFFSET,
                              BypassClass.OFFSET})
        out = classify(smb_pred(3), actual_dep(3, BypassClass.OFFSET),
                       bypassable_classes=extended)
        assert out.kind is OutcomeKind.CORRECT_SMB

    def test_store_seq_match_preferred_over_distance(self):
        pred = Prediction(PredictionKind.MDP, store_seq=42)
        actual = ActualOutcome(distance=9, store_seq=42,
                               bypass=BypassClass.DIRECT)
        assert classify(pred, actual).kind is OutcomeKind.CORRECT_MDP

    def test_distance_capped_comparison(self):
        """Actual distances beyond 127 compare against the capped value."""
        pred = mdp_pred(127)
        actual = ActualOutcome(distance=300, store_seq=1,
                               bypass=BypassClass.DIRECT)
        assert classify(pred, actual).kind is OutcomeKind.CORRECT_MDP


class TestAccuracyStats:
    def _stats_with(self, outcomes):
        stats = AccuracyStats()
        for pred, actual in outcomes:
            stats.record(classify(pred, actual))
        return stats

    def test_counts(self):
        stats = self._stats_with([
            (nodep_pred(), actual_none()),
            (nodep_pred(), actual_dep()),
            (mdp_pred(), actual_none()),
            (smb_pred(3), actual_dep(3)),
        ])
        assert stats.loads == 4
        assert stats.mispredictions == 2
        assert stats.false_dependencies == 1
        assert stats.speculative_errors == 1
        assert stats.squashes == 1

    def test_prediction_counts(self):
        stats = self._stats_with([
            (nodep_pred(), actual_none()),
            (mdp_pred(), actual_none()),
            (smb_pred(), actual_none()),
        ])
        assert stats.prediction_counts[PredictionKind.NO_DEP] == 1
        assert stats.prediction_counts[PredictionKind.MDP] == 1
        assert stats.prediction_counts[PredictionKind.SMB] == 1

    def test_mpki(self):
        stats = self._stats_with([(nodep_pred(), actual_dep())])
        stats.instructions = 1000
        assert stats.mpki() == pytest.approx(1.0)
        assert stats.mpki(2000) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            stats.mpki(0)

    def test_misprediction_mix_by_predicted_type(self):
        stats = self._stats_with([
            (nodep_pred(), actual_dep()),                 # NO_DEP mispredict
            (mdp_pred(3), actual_dep(7)),                 # MDP mispredict
            (smb_pred(3), actual_dep(3, BypassClass.MDP_ONLY)),  # SMB
        ])
        mix = stats.misprediction_mix()
        assert mix[PredictionKind.NO_DEP] == 1
        assert mix[PredictionKind.MDP] == 1
        assert mix[PredictionKind.SMB] == 1

    def test_merge(self):
        a = self._stats_with([(nodep_pred(), actual_dep())])
        a.instructions = 100
        b = self._stats_with([(mdp_pred(3), actual_dep(3))])
        b.instructions = 200
        a.merge(b)
        assert a.loads == 2
        assert a.instructions == 300
        assert a.mispredictions == 1
