"""Tests for the F1 tuning methodology (Sec. IV-F)."""

import pytest

from repro.analysis.f1 import (
    F1Recorder,
    RankedF1Profile,
    merge_profiles,
    suggest_table_sizes,
)
from repro.predictors.configs import MASCOT_DEFAULT
from repro.predictors.mascot import Mascot

from tests.conftest import drive_predictor, small_trace


class TestF1Recorder:
    def test_requires_tracking_predictor(self):
        with pytest.raises(ValueError):
            F1Recorder(Mascot(MASCOT_DEFAULT, track_f1=False))

    def test_positive_period(self):
        with pytest.raises(ValueError):
            F1Recorder(Mascot(track_f1=True), period_loads=0)

    def test_profile_shape(self):
        predictor = Mascot(track_f1=True)
        recorder = F1Recorder(predictor, period_loads=500)
        trace = small_trace("perlbench1", 10_000)
        for uop, pred, actual in drive_predictor(predictor, trace,
                                                 collect=True):
            recorder.tick()
        profile = recorder.finish()
        assert len(profile.ranked) == 8
        for t, scores in enumerate(profile.ranked):
            assert len(scores) == MASCOT_DEFAULT.table_entries[t]

    def test_scores_ranked_descending(self):
        predictor = Mascot(track_f1=True)
        recorder = F1Recorder(predictor, period_loads=500)
        trace = small_trace("perlbench1", 10_000)
        for _ in drive_predictor(predictor, trace, collect=True):
            recorder.tick()
        profile = recorder.finish()
        for scores in profile.ranked:
            assert all(a >= b for a, b in zip(scores, scores[1:]))

    def test_scores_in_unit_interval(self):
        predictor = Mascot(track_f1=True)
        recorder = F1Recorder(predictor, period_loads=1000)
        trace = small_trace("gcc1", 8_000)
        for _ in drive_predictor(predictor, trace, collect=True):
            recorder.tick()
        profile = recorder.finish()
        for scores in profile.ranked:
            assert all(0.0 <= s <= 1.0 for s in scores)

    def test_counters_reset_each_period(self):
        predictor = Mascot(track_f1=True)
        recorder = F1Recorder(predictor, period_loads=200)
        trace = small_trace("perlbench1", 6_000)
        for _ in drive_predictor(predictor, trace, collect=True):
            recorder.tick()
        recorder.finish()
        # After finish() all counters are reset.
        for table in predictor.bank.tables:
            for _, _, entry in table.entries():
                assert entry.tp == entry.fp == entry.fn == 0

    def test_low_context_tables_used_most(self):
        """The paper's Fig. 13/14 observation: early tables carry the most
        useful entries."""
        predictor = Mascot(track_f1=True)
        recorder = F1Recorder(predictor, period_loads=2000)
        trace = small_trace("perlbench1", 20_000)
        for _ in drive_predictor(predictor, trace, collect=True):
            recorder.tick()
        profile = recorder.finish()
        first_half = sum(profile.table_mean(t) for t in range(4))
        second_half = sum(profile.table_mean(t) for t in range(4, 8))
        assert first_half > second_half


class TestMergeProfiles:
    def test_merge_averages(self):
        p1 = RankedF1Profile(ranked=[[1.0, 0.5]], periods=1)
        p2 = RankedF1Profile(ranked=[[0.0, 0.5]], periods=1)
        merged = merge_profiles([p1, p2])
        assert merged.ranked == [[0.5, 0.5]]
        assert merged.periods == 2

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_profiles([])


class TestSuggestTableSizes:
    def test_hot_table_grows(self):
        profile = RankedF1Profile(ranked=[[0.9] * 8], periods=1)
        assert suggest_table_sizes(profile, [8]) == [16]

    def test_cold_tail_shrinks(self):
        scores = [0.9] * 4 + [0.0] * 12
        profile = RankedF1Profile(ranked=[scores], periods=1)
        assert suggest_table_sizes(profile, [16]) == [4]

    def test_half_cold_halves(self):
        scores = [0.9] * 3 + [0.1] * 5
        profile = RankedF1Profile(ranked=[scores], periods=1)
        assert suggest_table_sizes(profile, [8]) == [4]

    def test_dead_table_quarters(self):
        profile = RankedF1Profile(ranked=[[0.0] * 16], periods=1)
        # Clamped to one full set (4 ways) at minimum.
        assert suggest_table_sizes(profile, [16]) == [4]

    def test_balanced_table_unchanged(self):
        scores = [1.0, 0.9, 0.8, 0.7, 0.65, 0.6, 0.55, 0.52]
        profile = RankedF1Profile(ranked=[scores], periods=1)
        assert suggest_table_sizes(profile, [8]) == [16] or (
            suggest_table_sizes(profile, [8]) == [8]
        )

    def test_occupied_fraction(self):
        profile = RankedF1Profile(ranked=[[0.5, 0.5, 0.0, 0.0]], periods=1)
        assert profile.occupied_fraction(0) == pytest.approx(0.5)
