"""TableTelemetry unit tests and telemetry/ad-hoc counter consistency."""

from repro.obs.telemetry import TableTelemetry
from repro.predictors.base import TelemetrySink
from repro.predictors.mascot import Mascot
from repro.predictors.phast import Phast

from tests.conftest import drive_predictor, small_trace


class TestTableTelemetry:
    def test_lazy_slot_growth(self):
        sink = TableTelemetry()
        assert sink.num_slots == 0
        sink.lookup(3)
        assert sink.num_slots == 4
        assert sink.provider_hits == [0, 0, 0, 1]
        assert sink.allocations == [0, 0, 0, 0]

    def test_allocation_splits_nondep(self):
        sink = TableTelemetry()
        sink.allocation(1, distance=5)
        sink.allocation(1, distance=0)
        assert sink.allocations[1] == 2
        assert sink.nondep_allocations[1] == 1

    def test_event_and_confidence_counting(self):
        sink = TableTelemetry()
        sink.confidence(0, "up")
        sink.confidence(2, "up")
        sink.event("cyclic_clear")
        assert sink.confidence_events == {"up": 2}
        assert sink.events == {"cyclic_clear": 1}

    def test_history_labels_with_base_slot(self):
        sink = TableTelemetry(num_tables=2)
        sink.lookup(0)
        sink.lookup(2)
        rows = sink.provider_hits_by_history((0, 4))
        assert rows == [("h=0", 1), ("h=4", 0), ("base", 1)]

    def test_merge_accumulates_and_grows(self):
        a = TableTelemetry()
        a.lookup(0)
        a.event("x")
        b = TableTelemetry()
        b.lookup(2)
        b.eviction(2)
        b.event("x")
        a.merge(b)
        assert a.lookups == 2
        assert a.provider_hits == [1, 0, 1]
        assert a.evictions == [0, 0, 1]
        assert a.events == {"x": 2}

    def test_dict_round_trip(self):
        sink = TableTelemetry()
        sink.lookup(1)
        sink.allocation(0, 0)
        sink.confidence(0, "down")
        sink.event("set_merge")
        again = TableTelemetry.from_dict(sink.to_dict())
        assert again.to_dict() == sink.to_dict()

    def test_base_sink_is_a_noop(self):
        sink = TelemetrySink()
        sink.lookup(0)
        sink.allocation(0, 1)
        sink.eviction(0)
        sink.confidence(0, "up")
        sink.event("anything")  # nothing to assert: it must not raise


class TestPredictorConsistency:
    """provider_hits must mirror the ad-hoc predictions_per_table exactly."""

    def _drive(self, predictor, benchmark="perlbench1", uops=8_000):
        sink = predictor.attach_telemetry(TableTelemetry())
        drive_predictor(predictor, small_trace(benchmark, uops))
        return sink

    def test_mascot_provider_hits_match(self):
        predictor = Mascot()
        sink = self._drive(predictor)
        per_table = list(predictor.predictions_per_table)
        assert sink.provider_hits[:len(per_table)] == per_table
        assert sum(per_table) > 0

    def test_phast_provider_hits_match(self):
        predictor = Phast()
        sink = self._drive(predictor)
        per_table = list(predictor.predictions_per_table)
        assert sink.provider_hits[:len(per_table)] == per_table
        assert sum(per_table) > 0

    def test_unattached_predictor_keeps_working(self):
        predictor = Mascot()
        drive_predictor(predictor, small_trace("perlbench1", 4_000))
        assert predictor.telemetry is None
