"""Unit tests for the CPI-stack container."""

import pytest

from repro.obs.cycles import CYCLE_CATEGORIES, CycleAccountingError, CycleStack


class TestCycleStack:
    def test_starts_empty_with_every_category(self):
        stack = CycleStack()
        assert set(stack.cycles) == set(CYCLE_CATEGORIES)
        assert stack.total == 0

    def test_add_accumulates(self):
        stack = CycleStack()
        stack.add("memory", 10)
        stack.add("memory", 5)
        stack.add("commit", 1)
        assert stack.cycles["memory"] == 15
        assert stack.total == 16

    def test_unknown_category_rejected(self):
        stack = CycleStack()
        with pytest.raises(KeyError):
            stack.add("retire", 1)

    def test_validate_passes_on_exact_sum(self):
        stack = CycleStack()
        stack.add("frontend", 3)
        stack.add("memory", 7)
        stack.validate(10)

    def test_validate_raises_on_mismatch(self):
        stack = CycleStack()
        stack.add("memory", 7)
        with pytest.raises(CycleAccountingError, match="delta -3"):
            stack.validate(10)

    def test_validate_raises_on_negative_category(self):
        stack = CycleStack()
        stack.add("memory", 7)
        stack.add("commit", -7)
        with pytest.raises(CycleAccountingError, match="negative"):
            stack.validate(0)

    def test_shares_are_percentages(self):
        stack = CycleStack()
        stack.add("memory", 3)
        stack.add("commit", 1)
        shares = stack.shares()
        assert shares["memory"] == pytest.approx(75.0)
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_shares_of_empty_stack_are_zero(self):
        assert all(v == 0.0 for v in CycleStack().shares().values())

    def test_dict_round_trip(self):
        stack = CycleStack()
        stack.add("squash", 4)
        stack.add("window_sb", 2)
        again = CycleStack.from_dict(stack.to_dict())
        assert again.cycles == stack.cycles

    def test_from_dict_rejects_unknown_category(self):
        with pytest.raises(ValueError, match="unknown cycle category"):
            CycleStack.from_dict({"warp_drive": 1})
