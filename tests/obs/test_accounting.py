"""The cycle-accounting invariant: categories sum exactly to stats.cycles.

These are the property tests the ISSUE calls for: random (generator)
traces across benchmarks, predictors, cores and warmup boundaries, always
checking ``sum(stack.cycles.values()) == stats.cycles`` exactly — plus
guards that accounting is opt-in and perturbs nothing.
"""

import pytest

from repro.core.config import GOLDEN_COVE, LION_COVE
from repro.core.pipeline import Pipeline
from repro.predictors.mascot import Mascot
from repro.predictors.perfect import PerfectMDP
from repro.predictors.store_sets import StoreSets
from repro.trace.uop import MicroOp, OpClass

from tests.conftest import small_trace

PREDICTORS = {
    "perfect-mdp": PerfectMDP,
    "mascot": Mascot,
    "store-sets": StoreSets,
}


def run_accounted(trace, predictor, config=GOLDEN_COVE, measure_from=0):
    pipeline = Pipeline(predictor, config=config, accounting=True)
    stats = pipeline.run(trace, measure_from=measure_from)
    return stats, pipeline.cycle_stack


class TestInvariant:
    @pytest.mark.parametrize("bench", ["perlbench1", "lbm", "exchange2"])
    @pytest.mark.parametrize("name", sorted(PREDICTORS))
    def test_sums_to_cycles(self, bench, name):
        trace = small_trace(bench, 8_000)
        stats, stack = run_accounted(trace, PREDICTORS[name]())
        stack.validate(stats.cycles)

    @pytest.mark.parametrize("measure_from", [0, 1, 1_999, 2_000, 6_000])
    def test_holds_for_any_warmup_boundary(self, measure_from):
        trace = small_trace("gcc1", 6_000)
        stats, stack = run_accounted(trace, Mascot(),
                                     measure_from=measure_from)
        stack.validate(stats.cycles)

    def test_holds_on_lion_cove(self):
        trace = small_trace("xalancbmk", 6_000)
        stats, stack = run_accounted(trace, Mascot(), config=LION_COVE,
                                     measure_from=1_500)
        stack.validate(stats.cycles)

    def test_holds_on_tiny_windows(self):
        # Tiny buffers force window-occupancy stalls the default core
        # never sees; the invariant must survive them.
        config = GOLDEN_COVE.with_(rob_size=8, iq_size=4, lq_size=4,
                                   sb_size=2)
        trace = small_trace("perlbench1", 4_000)
        stats, stack = run_accounted(trace, PerfectMDP(), config=config)
        stack.validate(stats.cycles)

    def test_degenerate_full_warmup(self):
        trace = small_trace("exchange2", 1_000)
        stats, stack = run_accounted(trace, PerfectMDP(),
                                     measure_from=1_000)
        stack.validate(stats.cycles)

    def test_measured_region_attributes_real_stalls(self):
        trace = small_trace("perlbench1", 8_000)
        stats, stack = run_accounted(trace, Mascot(), measure_from=2_000)
        # A realistic trace always exercises the memory hierarchy, and
        # branch mispredictions in the measured region must surface as
        # redirect refill cycles.
        assert stack.cycles["memory"] > 0
        assert stats.branch_mispredictions > 0
        assert stack.cycles["redirect"] > 0

    def test_sb_pressure_lands_in_window_sb(self):
        config = GOLDEN_COVE.with_(sb_size=2)
        stores = [
            MicroOp(seq, 0x400000 + 4 * seq, OpClass.STORE,
                    address=0x10000 + 8 * seq, size=8)
            for seq in range(400)
        ]
        stats, stack = run_accounted(stores, PerfectMDP(), config=config)
        stack.validate(stats.cycles)
        assert stack.cycles["window_sb"] > 0


class TestAccountingIsOptIn:
    def test_off_by_default(self):
        pipeline = Pipeline(PerfectMDP())
        pipeline.run(small_trace("exchange2", 1_000))
        with pytest.raises(RuntimeError, match="accounting=True"):
            pipeline.cycle_stack

    def test_does_not_perturb_statistics(self):
        trace = small_trace("perlbench1", 6_000)
        plain = Pipeline(Mascot()).run(trace, measure_from=1_500)
        accounted, _ = run_accounted(trace, Mascot(), measure_from=1_500)
        assert accounted.to_dict() == plain.to_dict()
