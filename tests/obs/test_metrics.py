"""MetricsWriter and the suite engine's JSONL execution records."""

import json

from repro.experiments.parallel import CellSpec, execute_cells
from repro.obs.metrics import MetricsWriter


def read_records(path):
    return [json.loads(line) for line in
            path.read_text().strip().splitlines()]


class TestMetricsWriter:
    def test_appends_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsWriter(path) as writer:
            writer.emit({"event": "a", "n": 1})
            writer.emit({"event": "b"})
        assert writer.records == 2
        events = [r["event"] for r in read_records(path)]
        assert events == ["a", "b"]

    def test_lazy_open_writes_nothing_for_no_records(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsWriter(path):
            pass
        assert not path.exists()

    def test_reopening_appends(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsWriter(path) as writer:
            writer.emit({"event": "first"})
        with MetricsWriter(path) as writer:
            writer.emit({"event": "second"})
        assert [r["event"] for r in read_records(path)] == ["first", "second"]


class TestSuiteMetrics:
    def _cells(self):
        return [
            CellSpec(mode="accuracy", benchmark=bench, num_uops=2_000,
                     predictor="store-sets", warmup=500)
            for bench in ("exchange2", "lbm")
        ]

    def test_cold_run_emits_computed_cells_and_sweep(self, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        execute_cells(self._cells(), cache=tmp_path / "cache",
                      metrics=metrics)
        records = read_records(metrics)
        cells = [r for r in records if r["event"] == "cell"]
        assert [r["source"] for r in cells] == ["computed", "computed"]
        assert {r["benchmark"] for r in cells} == {"exchange2", "lbm"}
        assert all(r["status"] == "ok" and r["duration_s"] >= 0
                   for r in cells)
        (sweep,) = [r for r in records if r["event"] == "sweep"]
        assert sweep["cells"] == 2
        assert sweep["computed"] == 2
        assert sweep["cache_hits"] == 0

    def test_warm_rerun_reports_cache_hits(self, tmp_path):
        cache = tmp_path / "cache"
        cold = execute_cells(self._cells(), cache=cache,
                             metrics=tmp_path / "cold.jsonl")
        warm_metrics = tmp_path / "warm.jsonl"
        warm = execute_cells(self._cells(), cache=cache,
                             metrics=warm_metrics)
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]
        records = read_records(warm_metrics)
        cells = [r for r in records if r["event"] == "cell"]
        assert [r["source"] for r in cells] == ["cache", "cache"]
        (sweep,) = [r for r in records if r["event"] == "sweep"]
        assert sweep["cache_hits"] == 2
        assert sweep["computed"] == 0

    def test_metrics_off_by_default(self, tmp_path):
        execute_cells(self._cells(), cache=tmp_path / "cache")
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_accepts_open_writer_without_closing_it(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        writer = MetricsWriter(path)
        execute_cells(self._cells()[:1], cache=tmp_path / "cache",
                      metrics=writer)
        writer.emit({"event": "caller"})  # still usable: not closed
        writer.close()
        events = [r["event"] for r in read_records(path)]
        assert events.count("cell") == 1
        assert events[-1] == "caller"
