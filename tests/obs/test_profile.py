"""profile_cell and the ``repro profile`` CLI subcommand."""

import json

from repro.cli import main
from repro.obs.profile import profile_cell


class TestProfileCell:
    def test_report_validates_and_serialises(self):
        report = profile_cell("perlbench1", "mascot", 6_000)
        report.validate()
        assert report.measure_from == 1_500
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["cycles"] == report.stats.cycles
        assert sum(payload["cycle_stack"].values()) == payload["cycles"]
        assert payload["history_lengths"]  # mascot has TAGE geometry

    def test_render_contains_stack_and_tables(self):
        report = profile_cell("perlbench1", "mascot", 6_000)
        text = report.render()
        assert "cycle stack" in text
        assert "table usage" in text
        assert "memory" in text
        assert f"cycles {report.stats.cycles}" in text

    def test_predictor_without_tables_still_profiles(self):
        report = profile_cell("lbm", "perfect-mdp", 4_000)
        report.validate()
        assert report.history_lengths == ()

    def test_explicit_measure_from(self):
        report = profile_cell("exchange2", "store-sets", 4_000,
                              measure_from=0)
        report.validate()
        assert report.stats.instructions == 4_000


class TestProfileCommand:
    def test_exit_zero_and_renders(self, capsys):
        assert main(["profile", "perlbench1", "mascot",
                     "--uops", "4000"]) == 0
        out = capsys.readouterr().out
        assert "cycle stack" in out

    def test_json_output(self, capsys):
        assert main(["profile", "lbm", "store-sets", "--uops", "4000",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sum(payload["cycle_stack"].values()) == payload["cycles"]
