#!/usr/bin/env python3
"""Timeline debugging — watching a bypass happen cycle by cycle.

Runs the same trace twice — MDP-only and MDP+SMB — with per-uop timeline
capture, finds a load whose value was delivered through speculative memory
bypassing, and renders the pipeline diagrams around it so the mechanism is
visible: with SMB the load's consumers issue before the load itself has
finished verifying.

Run:  python examples/timeline_debug.py [benchmark] [num_uops]
"""

import sys

from repro import MASCOT_DEFAULT, Mascot, Pipeline, generate_trace


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "perlbench2"
    num_uops = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000

    print(f"Simulating {benchmark} twice ({num_uops:,} uops) ...")
    trace = generate_trace(benchmark, num_uops)

    smb_pipeline = Pipeline(Mascot(), record_timeline=True)
    smb_stats = smb_pipeline.run(trace)
    mdp_pipeline = Pipeline(
        Mascot(MASCOT_DEFAULT.with_(name="mdp", smb_enabled=False)),
        record_timeline=True,
    )
    mdp_stats = mdp_pipeline.run(trace)

    smb_timeline = smb_pipeline.timeline(trace)
    mdp_timeline = mdp_pipeline.timeline(trace)

    # Find a dependent load late in the trace whose consumers clearly
    # benefited: compare each run's value-ready time relative to that
    # run's own fetch of the load (absolute cycle counts drift apart).
    best_seq, best_gain = None, 0
    for uop in trace[num_uops // 2:]:
        if not (uop.is_load and uop.has_dependence
                and uop.bypass.is_bypassable):
            continue
        mdp_wait = (mdp_pipeline._value_ready[uop.seq]
                    - mdp_timeline[uop.seq].fetch)
        smb_wait = (smb_pipeline._value_ready[uop.seq]
                    - smb_timeline[uop.seq].fetch)
        gain = mdp_wait - smb_wait
        if gain > best_gain:
            best_seq, best_gain = uop.seq, gain
    if best_seq is None:
        raise SystemExit("no bypassed load found — try a longer trace")

    window = (max(best_seq - 4, 0), min(best_seq + 6, len(trace)))
    print(f"\nLoad #{best_seq}: value available {best_gain} cycles earlier "
          "with SMB.\n")
    print("--- MDP only (load waits for the store's address, forwards):")
    print(mdp_timeline.render(*window))
    print("--- MDP + SMB (consumers get the store's data directly):")
    print(smb_timeline.render(*window))
    print(f"whole-trace IPC: {mdp_stats.ipc:.3f} (MDP) vs "
          f"{smb_stats.ipc:.3f} (MDP+SMB), "
          f"{smb_stats.loads_bypassed:,} loads bypassed")
    print(f"mean fetch-to-commit latency: "
          f"{mdp_timeline.mean_latency():.1f} vs "
          f"{smb_timeline.mean_latency():.1f} cycles")


if __name__ == "__main__":
    main()
