#!/usr/bin/env python3
"""Future architectures — the Fig. 12 study as an application.

Compares MASCOT and the perfect-MDP+SMB ceiling on Golden Cove vs Lion
Cove, and additionally sweeps a synthetic "ever wider" core family to show
how the SMB opportunity scales with window sizes — the paper's argument for
why bypassing matters more on future machines.

Run:  python examples/future_architectures.py [num_uops]
"""

import sys

from repro import GOLDEN_COVE, LION_COVE
from repro.experiments import render_table, run_ipc_suite

BENCHMARKS = ["perlbench2", "gcc4", "lbm", "xz"]


def main() -> None:
    num_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000

    widened = LION_COVE.with_(
        name="hypothetical-wider",
        fetch_width=10,
        commit_width=16,
        rob_size=768,
        iq_size=320,
        lq_size=256,
        sb_size=160,
        load_ports=4,
        alu_ports=8,
    )

    rows = []
    for core in (GOLDEN_COVE, LION_COVE, widened):
        print(f"Sweeping {core.name} "
              f"(ROB {core.rob_size}, {core.fetch_width}-wide) ...")
        suite = run_ipc_suite(["perfect-mdp-smb", "mascot"],
                              BENCHMARKS, num_uops, config=core)
        rows.append([
            core.name,
            core.rob_size,
            f"{100 * (suite.geomean('perfect-mdp-smb') - 1):+.2f}%",
            f"{100 * (suite.geomean('mascot') - 1):+.2f}%",
        ])
    print()
    print(render_table(
        ["core", "ROB", "perfect MDP+SMB ceiling", "MASCOT"],
        rows,
        title="Fig. 12 — SMB headroom grows with core size "
              "(vs each core's own perfect MDP)",
    ))
    print("Paper: ceiling 2.1% (Golden Cove) -> 2.8% (Lion Cove); "
          "MASCOT 1.0% -> 1.3%.")


if __name__ == "__main__":
    main()
