#!/usr/bin/env python3
"""SimPoint workflow — evaluating on representative intervals.

The paper simulates 100M-instruction SimPoint intervals instead of whole
benchmarks.  This example runs the same workflow on a synthetic trace:

1. generate a long trace,
2. cluster its intervals by basic-block vector and pick SimPoints,
3. estimate full-trace IPC from the weighted SimPoints,
4. compare the estimate (and its cost) against simulating everything.

Run:  python examples/simpoint_workflow.py [benchmark] [num_uops]
"""

import sys
import time

from repro import Mascot, Pipeline, generate_trace
from repro.trace import select_simpoints, estimate_weighted


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc1"
    num_uops = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000
    interval = max(num_uops // 12, 2_000)

    print(f"Generating {num_uops:,} micro-ops of {benchmark!r} ...")
    trace = generate_trace(benchmark, num_uops)

    print("Selecting SimPoints "
          f"({num_uops // interval} intervals of {interval:,}) ...")
    simpoints = select_simpoints(trace, interval, max_k=4)
    for s in simpoints:
        print(f"  interval {s.interval.index:3d} "
              f"[{s.interval.start:,}..{s.interval.end:,})  "
              f"weight {s.weight:.2f}  (stands for {s.cluster_size} "
              "intervals)")

    def ipc(piece, measure_from):
        return Pipeline(Mascot()).run(piece, measure_from=measure_from).ipc

    t0 = time.time()
    estimate = estimate_weighted(trace, simpoints, ipc)
    estimate_time = time.time() - t0

    t0 = time.time()
    full = Pipeline(Mascot()).run(trace).ipc
    full_time = time.time() - t0

    error = 100.0 * (estimate / full - 1.0)
    print()
    print(f"full simulation      : IPC {full:.4f}  ({full_time:.1f}s)")
    print(f"SimPoint estimate    : IPC {estimate:.4f}  "
          f"({estimate_time:.1f}s, {error:+.1f}% error)")
    print(f"simulated fraction   : "
          f"{sum(s.interval.end - s.interval.start for s in simpoints) / len(trace):.0%}"
          " of the trace")


if __name__ == "__main__":
    main()
