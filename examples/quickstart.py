#!/usr/bin/env python3
"""Quickstart: run MASCOT on a synthetic benchmark and read the results.

This is the five-minute tour of the public API:

1. generate a trace for one of the SPEC CPU2017 stand-in benchmarks,
2. run the out-of-order timing model with MASCOT and with the perfect-MDP
   oracle every paper figure normalises against,
3. compare IPC, squashes and bypasses.

Run:  python examples/quickstart.py [benchmark] [num_uops]
"""

import sys

from repro import (
    GOLDEN_COVE,
    Mascot,
    PerfectMDP,
    Pipeline,
    generate_trace,
    suite_names,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "perlbench1"
    num_uops = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    if benchmark not in suite_names():
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; choose from: "
            + ", ".join(suite_names())
        )

    print(f"Generating {num_uops:,} micro-ops of {benchmark!r} ...")
    trace = generate_trace(benchmark, num_uops)
    loads = sum(1 for u in trace if u.is_load)
    deps = sum(1 for u in trace if u.is_load and u.has_dependence)
    print(f"  {loads:,} loads, {deps / loads:.1%} with an in-flight "
          f"store dependence\n")

    print(f"Simulating on {GOLDEN_COVE.name} (Table I configuration) ...")
    baseline = Pipeline(PerfectMDP()).run(trace)
    mascot_stats = Pipeline(Mascot()).run(trace)

    speedup = 100.0 * (mascot_stats.ipc / baseline.ipc - 1.0)
    acc = mascot_stats.accuracy

    print(f"  perfect MDP oracle : IPC {baseline.ipc:.3f}")
    print(f"  MASCOT (MDP + SMB) : IPC {mascot_stats.ipc:.3f} "
          f"({speedup:+.2f}% vs oracle)")
    print()
    print(f"  loads bypassed (SMB)        : {mascot_stats.loads_bypassed:,}")
    print(f"  loads forwarded via SB      : {mascot_stats.loads_forwarded:,}")
    print(f"  memory-order squashes       : {mascot_stats.memory_squashes:,}")
    print(f"  dependence mispredictions   : {acc.mispredictions:,} "
          f"({acc.mpki():.2f} MPKI)")
    print(f"     false dependencies       : {acc.false_dependencies:,}")
    print(f"     speculative errors       : {acc.speculative_errors:,}")
    print()
    print(f"  predictor storage           : "
          f"{Mascot().storage_kib:.1f} KiB (paper: 14 KiB)")


if __name__ == "__main__":
    main()
