#!/usr/bin/env python3
"""Predictor shootout: every predictor on a contrasting benchmark trio.

Reproduces the qualitative story of Figs. 7-9 on three benchmarks chosen
for their different characters:

* ``perlbench2`` — dependence-rich, highly sensitive to early load values
  (the paper's best case for SMB);
* ``lbm``        — many bypassable dependences but short consumer chains;
* ``exchange2``  — almost register-resident, so MDP/SMB barely matter.

Run:  python examples/predictor_shootout.py [num_uops]
"""

import sys

from repro import GOLDEN_COVE, Pipeline, generate_trace
from repro.experiments import make_predictor, render_table

PREDICTORS = [
    "perfect-mdp",
    "perfect-mdp-smb",
    "mascot",
    "mascot-mdp",
    "tage-no-nd",
    "phast",
    "nosq",
    "store-sets",
]

BENCHMARKS = ["perlbench2", "lbm", "exchange2"]


def main() -> None:
    num_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000

    rows = []
    for benchmark in BENCHMARKS:
        print(f"Simulating {benchmark} ({num_uops:,} uops, "
              f"{len(PREDICTORS)} predictors) ...")
        trace = generate_trace(benchmark, num_uops)
        baseline_ipc = None
        for name in PREDICTORS:
            stats = Pipeline(make_predictor(name), config=GOLDEN_COVE).run(
                trace
            )
            if name == "perfect-mdp":
                baseline_ipc = stats.ipc
            rows.append([
                benchmark,
                name,
                stats.ipc,
                f"{100 * (stats.ipc / baseline_ipc - 1):+.2f}%",
                stats.memory_squashes,
                stats.loads_bypassed,
                stats.accuracy.mispredictions,
            ])
    print()
    print(render_table(
        ["benchmark", "predictor", "IPC", "vs perfect MDP", "squashes",
         "bypassed", "MDP mispredicts"],
        rows,
        title="Predictor shootout (Figs. 7 and 9, three benchmarks)",
    ))
    print("Expected shape: MASCOT > PHAST ≈ Store Sets > NoSQ on "
          "dependence-rich benchmarks; all predictors tie on exchange2.")


if __name__ == "__main__":
    main()
