#!/usr/bin/env python3
"""Build a custom workload profile and study predictor behaviour on it.

The suite profiles stand in for SPEC, but :class:`WorkloadProfile` is a
public knob-set: this example constructs a deliberately adversarial
"interpreter" workload — nearly every dependence is branch-conditional in
the Fig. 3 pattern — and shows how the predictor gap widens, then sweeps
the conditional fraction to map where MASCOT's non-dependence allocation
starts paying.

Run:  python examples/custom_workload.py [num_uops]
"""

import sys

from repro import Mascot, PerfectMDP, Phast, Pipeline, WorkloadProfile
from repro.experiments import render_table
from repro.trace import TraceGenerator, build_program
from repro.trace.uop import BypassClass


def interpreter_profile(conditional: float) -> WorkloadProfile:
    """An interpreter-like core loop: dense, conditional store/load
    traffic through a virtual stack."""
    return WorkloadProfile(
        name=f"interp-cond{int(conditional * 100)}",
        frac_load=0.30, frac_store=0.18, frac_branch=0.18, frac_fp=0.00,
        frac_indirect=0.10,
        dep_fraction=0.5,
        bypass_mix={
            BypassClass.DIRECT: 0.85,
            BypassClass.NO_OFFSET: 0.06,
            BypassClass.OFFSET: 0.04,
            BypassClass.MDP_ONLY: 0.05,
        },
        conditional_dep_fraction=conditional,
        tight_conditional_fraction=0.8,
        guard_taken_bias=0.7,
        branch_pattern_fraction=0.7,
        chain_bias=0.7, load_consumer_fraction=0.6,
        footprint=1 << 18, stride_fraction=0.5,
        num_segments=30, segment_length_mean=8.0,
    )


def main() -> None:
    num_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000

    rows = []
    for conditional in (0.0, 0.25, 0.5, 0.75):
        profile = interpreter_profile(conditional)
        program = build_program(profile, seed=0)
        trace = TraceGenerator(program, seed=1).generate(num_uops)
        baseline = Pipeline(PerfectMDP()).run(trace)
        mascot = Pipeline(Mascot()).run(trace)
        phast = Pipeline(Phast()).run(trace)
        rows.append([
            f"{conditional:.0%}",
            f"{100 * (mascot.ipc / baseline.ipc - 1):+.2f}%",
            f"{100 * (phast.ipc / baseline.ipc - 1):+.2f}%",
            mascot.accuracy.false_dependencies,
            phast.accuracy.false_dependencies,
        ])
    print(render_table(
        ["conditional deps", "MASCOT IPC", "PHAST IPC",
         "MASCOT false deps", "PHAST false deps"],
        rows,
        title="Custom interpreter workload: the MASCOT-PHAST gap vs how "
              "conditional the dependencies are",
    ))
    print("Expectation: with no conditional dependencies the predictors "
          "tie; as the Fig. 3 pattern dominates, PHAST accumulates false "
          "dependencies while MASCOT's non-dependence entries absorb them.")


if __name__ == "__main__":
    main()
