#!/usr/bin/env python3
"""Area tuning walkthrough — Sec. IV-F / VI-D as an application.

Runs MASCOT with per-entry F1 tracking over a few benchmarks, prints the
rank-ordered F1 profile per table (Fig. 14), applies the paper's
grow/shrink heuristics to suggest table sizes, and then measures the
accuracy cost of moving to MASCOT-OPT and the tag-reduced variants
(Fig. 15) in prediction-only mode.

Run:  python examples/tuning_mascot.py [num_uops]
"""

import sys

from repro import MASCOT_DEFAULT, MASCOT_OPT, Mascot, mascot_opt_reduced_tags
from repro.analysis import suggest_table_sizes
from repro.experiments import (
    default_cache,
    fig14_f1_ranking,
    render_table,
    run_prediction_only,
)

BENCHMARKS = ["perlbench1", "gcc1", "lbm", "mcf"]


def main() -> None:
    num_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000

    print(f"Profiling entry usage over {BENCHMARKS} ...")
    result = fig14_f1_ranking(BENCHMARKS, num_uops, period_loads=5_000)
    print()
    print(result.render())

    suggested = suggest_table_sizes(
        result.profile, MASCOT_DEFAULT.table_entries
    )
    rows = [
        [f"table {t + 1}", MASCOT_DEFAULT.table_entries[t],
         suggested[t], MASCOT_OPT.table_entries[t]]
        for t in range(8)
    ]
    print(render_table(
        ["table", "default", "heuristic suggestion", "paper's MASCOT-OPT"],
        rows,
        title="Table resizing: mechanical heuristic vs the paper's choice",
    ))

    print("Accuracy cost of the compact configurations "
          "(prediction-only mode):")
    cache = default_cache()
    configs = [
        ("mascot (14 KiB)", MASCOT_DEFAULT),
        ("mascot-opt", MASCOT_OPT),
        ("mascot-opt tags-4", mascot_opt_reduced_tags(4)),
    ]
    rows = []
    for label, config in configs:
        total = 0
        for benchmark in BENCHMARKS:
            trace = cache.get(benchmark, num_uops)
            run = run_prediction_only(trace, Mascot(config))
            total += run.accuracy.mispredictions
        rows.append([label, f"{config.storage_kib:.2f}", total])
    print(render_table(
        ["configuration", "KiB", "total mispredictions"],
        rows,
        title="Fig. 15's trade-off at prediction level",
    ))
    print("Paper: MASCOT-OPT costs ~0.09% IPC; tags-4 costs ~0.13% IPC "
          "for 10.1 KiB.")


if __name__ == "__main__":
    main()
