#!/usr/bin/env python3
"""SMB opportunity analysis — the Fig. 2 study as an application.

Scans suite traces and histograms, per benchmark, how loads relate to
their nearest older in-flight store: DirectBypass / NoOffset / Offset /
MDP-only (Fig. 1's taxonomy).  Then estimates how much of the dependence
traffic MASCOT's default hardware assumption (same-address bypassing only,
Sec. IV-E) can capture, and what the offset-bypass extension would add.

Run:  python examples/smb_opportunities.py [num_uops]
"""

import sys

from repro.experiments import fig2_smb_opportunities, render_table
from repro.trace import suite_names


def main() -> None:
    num_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    benchmarks = suite_names()
    print(f"Scanning {len(benchmarks)} benchmarks x {num_uops:,} uops ...")
    result = fig2_smb_opportunities(benchmarks, num_uops)
    print()
    print(result.render())

    rows = []
    for bench, per in result.percentages.items():
        total_dep = sum(per.values())
        same_address = per["DirectBypass"] + per["NoOffset"]
        with_offset = same_address + per["Offset"]
        coverage = 100 * same_address / total_dep if total_dep else 0.0
        extended = 100 * with_offset / total_dep if total_dep else 0.0
        rows.append([bench, f"{total_dep:.1f}", f"{coverage:.0f}%",
                     f"{extended:.0f}%"])
    print(render_table(
        ["benchmark", "dependent loads (% of loads)",
         "bypassable w/ same-addr HW", "... + offset extension"],
        rows,
        title="How much dependence traffic each bypass capability covers",
    ))
    print("Paper observation: the same-size aligned case dominates, so the "
          "simple same-address hardware already covers most opportunities.")


if __name__ == "__main__":
    main()
