#!/usr/bin/env bash
# Chaos drill for the distributed suite engine (CI `chaos` job).
#
# Launches two `repro worker` processes, starts a distributed sweep
# against them, then SIGKILLs one worker mid-grid and — once the run has
# made further progress on the survivor — SIGKILLs the coordinator too.
# A replacement worker joins, a fresh coordinator resumes the same
# journal, and the merged output must be bit-identical to a clean serial
# run.  Exercises every recovery layer at once: worker-lost requeue,
# lease expiry bookkeeping, torn journal tails and `--resume`.
#
# Act two repeats the discipline for the shared-service layer: a grid
# submitted through `repro serve` (backed by `repro cache-serve`) must
# stream digests bit-identical to a serial cache-off run even when the
# cache server is SIGKILLed mid-grid and restarted.
#
# Requires PYTHONPATH to reach the repro package (CI exports it).
set -euo pipefail

WORKDIR=$(mktemp -d)
JOURNALS="$WORKDIR/journals"
UOPS=${CHAOS_UOPS:-60000}
GRID=(--benchmarks exchange2 lbm perlbench1 mcf xalancbmk gcc1)

cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

start_worker() { # $1: ready file; prints the worker pid
    python -m repro worker --ready-file "$1" >/dev/null 2>&1 &
    echo $!
}

wait_ready() { # $1: ready file
    for _ in $(seq 1 200); do
        [ -s "$1" ] && return 0
        sleep 0.05
    done
    echo "chaos drill: worker never wrote $1" >&2
    exit 1
}

wait_oks() { # $1: minimum journaled ok records
    for _ in $(seq 1 1200); do
        n=$(cat "$JOURNALS"/*.jsonl 2>/dev/null \
            | grep -c '"event": "ok"' || true)
        [ "${n:-0}" -ge "$1" ] && return 0
        sleep 0.1
    done
    echo "chaos drill: timed out waiting for $1 journaled cells" >&2
    exit 1
}

W1_PID=$(start_worker "$WORKDIR/w1.ready")
W2_PID=$(start_worker "$WORKDIR/w2.ready")
wait_ready "$WORKDIR/w1.ready"
wait_ready "$WORKDIR/w2.ready"
ENDPOINTS="$(cat "$WORKDIR/w1.ready"),$(cat "$WORKDIR/w2.ready")"

# Preflight: both endpoints must answer the protocol handshake.
python -m repro doctor --workers "$ENDPOINTS"

python -m repro accuracy mascot phast "${GRID[@]}" --uops "$UOPS" \
    --no-cache --retries 3 --journal-dir "$JOURNALS" \
    --workers "$ENDPOINTS" >"$WORKDIR/first.out" 2>"$WORKDIR/first.err" &
COORD_PID=$!

wait_oks 1
kill -9 "$W1_PID"               # one worker dies mid-grid
echo "chaos drill: killed worker 1 (pid $W1_PID)"
wait_oks 3                      # progress continues on the survivor
kill -9 "$COORD_PID"            # ... then the coordinator dies too
echo "chaos drill: killed coordinator (pid $COORD_PID)"
wait "$COORD_PID" 2>/dev/null || true

RUN_FILE=$(ls "$JOURNALS"/*.jsonl | head -n1)
RUN_ID=$(basename "$RUN_FILE" .jsonl)
echo "chaos drill: resuming $RUN_ID"

# A replacement worker joins the survivor; a fresh coordinator resumes.
W3_PID=$(start_worker "$WORKDIR/w3.ready")
wait_ready "$WORKDIR/w3.ready"
ENDPOINTS2="$(cat "$WORKDIR/w2.ready"),$(cat "$WORKDIR/w3.ready")"
python -m repro accuracy mascot phast "${GRID[@]}" --uops "$UOPS" \
    --no-cache --retries 3 --journal-dir "$JOURNALS" \
    --workers "$ENDPOINTS2" --resume "$RUN_ID" >"$WORKDIR/resumed.out"

# Bit-identical to a clean serial run with no journal and no workers.
python -m repro accuracy mascot phast "${GRID[@]}" --uops "$UOPS" \
    --no-cache --no-journal >"$WORKDIR/clean.out"
diff "$WORKDIR/resumed.out" "$WORKDIR/clean.out"
echo "chaos drill: merged results bit-identical after worker kill" \
     "and coordinator restart"

########################################################################
# Act two: shared cache service + async submit API.
#
# Starts a `repro cache-serve` result-cache server (with torn-once and
# corrupt-once protocol faults injected into its replies) and a
# `repro serve` HTTP coordinator backed by two `--sessions 2` workers,
# streams a grid submission as NDJSON, SIGKILLs the cache server
# mid-grid (the client degrades to its read-only local fallback),
# restarts it on the same port (the client reconnects), and requires
# the streamed digests to be bit-identical to a serial cache-off run
# of the same submission.

echo "chaos drill: act two — cache service + async submit"

CACHE_DIR="$WORKDIR/cache"
REPRO_FAULT_INJECT="torn-once=cache/serve@$WORKDIR/torn.latch;corrupt-once=cache/serve@$WORKDIR/corrupt.latch" \
python -m repro cache-serve --cache-dir "$CACHE_DIR" \
    --ready-file "$WORKDIR/cs.ready" >/dev/null 2>&1 &
CS_PID=$!
wait_ready "$WORKDIR/cs.ready"
CS_ADDR=$(cat "$WORKDIR/cs.ready")
CS_PORT="${CS_ADDR##*:}"

# Preflight: the cache server answers the protocol handshake too.
python -m repro doctor --cache-url "tcp://$CS_ADDR"

python -m repro worker --sessions 2 --ready-file "$WORKDIR/w4.ready" \
    >/dev/null 2>&1 &
python -m repro worker --sessions 2 --ready-file "$WORKDIR/w5.ready" \
    >/dev/null 2>&1 &
wait_ready "$WORKDIR/w4.ready"
wait_ready "$WORKDIR/w5.ready"

python -m repro serve \
    --workers "$(cat "$WORKDIR/w4.ready"),$(cat "$WORKDIR/w5.ready")" \
    --cache-url "tcp://$CS_ADDR" --ready-file "$WORKDIR/serve.ready" \
    >/dev/null 2>&1 &
wait_ready "$WORKDIR/serve.ready"
SERVE_ADDR=$(cat "$WORKDIR/serve.ready")

cat >"$WORKDIR/grid.json" <<EOF
{"mode": "accuracy", "predictors": ["mascot", "phast"],
 "benchmarks": ["exchange2", "lbm", "perlbench1", "mcf"],
 "num_uops": $UOPS}
EOF

cat >"$WORKDIR/submit.py" <<'EOF'
"""Stream one NDJSON grid submission to stdout as records settle."""
import sys
import urllib.request

addr, grid = sys.argv[1], sys.argv[2]
request = urllib.request.Request(
    f"http://{addr}/submit", data=open(grid, "rb").read(),
    headers={"Content-Type": "application/json"})
with urllib.request.urlopen(request, timeout=900) as response:
    for line in response:
        text = line.decode().strip()
        if text:
            print(text, flush=True)
EOF

python "$WORKDIR/submit.py" "$SERVE_ADDR" "$WORKDIR/grid.json" \
    >"$WORKDIR/stream.ndjson" &
SUBMIT_PID=$!

wait_cells() { # $1: minimum streamed cell records
    for _ in $(seq 1 1200); do
        n=$(grep -c '"event": "cell"' "$WORKDIR/stream.ndjson" \
            2>/dev/null || true)
        [ "${n:-0}" -ge "$1" ] && return 0
        sleep 0.1
    done
    echo "chaos drill: timed out waiting for $1 streamed cells" >&2
    exit 1
}

wait_cells 1
kill -9 "$CS_PID"               # the cache server dies mid-grid ...
echo "chaos drill: killed cache server (pid $CS_PID)"
wait_cells 3                    # ... and the grid keeps settling without it
python -m repro cache-serve --cache-dir "$CACHE_DIR" --port "$CS_PORT" \
    --ready-file "$WORKDIR/cs2.ready" >/dev/null 2>&1 &
wait_ready "$WORKDIR/cs2.ready"
echo "chaos drill: restarted cache server on port $CS_PORT"

wait "$SUBMIT_PID"

# The injected protocol fault really fired (its latch file exists);
# the client absorbed it with a reconnect retry.
if [ ! -f "$WORKDIR/torn.latch" ]; then
    echo "chaos drill: injected torn fault never fired" >&2
    exit 1
fi

# Bit-identical to a serial cache-off run of the same submission.
python - "$WORKDIR" <<'EOF'
import json
import sys

from repro.experiments.parallel import execute_cells
from repro.experiments.serve import SubmissionSpec, submission_summary

workdir = sys.argv[1]
with open(f"{workdir}/grid.json") as handle:
    spec = SubmissionSpec(json.load(handle))
results = execute_cells(spec.cells, cache=None, journal=None)
reference = submission_summary(spec.mode, spec.cells, results)["digests"]

records = [json.loads(line)
           for line in open(f"{workdir}/stream.ndjson") if line.strip()]
done = records[-1]
assert done["event"] == "done", done
assert done["failed"] == 0, done
streamed = done["summary"]["digests"]
assert streamed == reference, (streamed, reference)
print(f"chaos drill: {len(streamed)} streamed digests bit-identical "
      "to the serial cache-off reference")
EOF
echo "chaos drill: submission survived a cache-server kill + restart"
