#!/usr/bin/env bash
# Chaos drill for the distributed suite engine (CI `chaos` job).
#
# Launches two `repro worker` processes, starts a distributed sweep
# against them, then SIGKILLs one worker mid-grid and — once the run has
# made further progress on the survivor — SIGKILLs the coordinator too.
# A replacement worker joins, a fresh coordinator resumes the same
# journal, and the merged output must be bit-identical to a clean serial
# run.  Exercises every recovery layer at once: worker-lost requeue,
# lease expiry bookkeeping, torn journal tails and `--resume`.
#
# Requires PYTHONPATH to reach the repro package (CI exports it).
set -euo pipefail

WORKDIR=$(mktemp -d)
JOURNALS="$WORKDIR/journals"
UOPS=${CHAOS_UOPS:-60000}
GRID=(--benchmarks exchange2 lbm perlbench1 mcf xalancbmk gcc1)

cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

start_worker() { # $1: ready file; prints the worker pid
    python -m repro worker --ready-file "$1" >/dev/null 2>&1 &
    echo $!
}

wait_ready() { # $1: ready file
    for _ in $(seq 1 200); do
        [ -s "$1" ] && return 0
        sleep 0.05
    done
    echo "chaos drill: worker never wrote $1" >&2
    exit 1
}

wait_oks() { # $1: minimum journaled ok records
    for _ in $(seq 1 1200); do
        n=$(cat "$JOURNALS"/*.jsonl 2>/dev/null \
            | grep -c '"event": "ok"' || true)
        [ "${n:-0}" -ge "$1" ] && return 0
        sleep 0.1
    done
    echo "chaos drill: timed out waiting for $1 journaled cells" >&2
    exit 1
}

W1_PID=$(start_worker "$WORKDIR/w1.ready")
W2_PID=$(start_worker "$WORKDIR/w2.ready")
wait_ready "$WORKDIR/w1.ready"
wait_ready "$WORKDIR/w2.ready"
ENDPOINTS="$(cat "$WORKDIR/w1.ready"),$(cat "$WORKDIR/w2.ready")"

# Preflight: both endpoints must answer the protocol handshake.
python -m repro doctor --workers "$ENDPOINTS"

python -m repro accuracy mascot phast "${GRID[@]}" --uops "$UOPS" \
    --no-cache --retries 3 --journal-dir "$JOURNALS" \
    --workers "$ENDPOINTS" >"$WORKDIR/first.out" 2>"$WORKDIR/first.err" &
COORD_PID=$!

wait_oks 1
kill -9 "$W1_PID"               # one worker dies mid-grid
echo "chaos drill: killed worker 1 (pid $W1_PID)"
wait_oks 3                      # progress continues on the survivor
kill -9 "$COORD_PID"            # ... then the coordinator dies too
echo "chaos drill: killed coordinator (pid $COORD_PID)"
wait "$COORD_PID" 2>/dev/null || true

RUN_FILE=$(ls "$JOURNALS"/*.jsonl | head -n1)
RUN_ID=$(basename "$RUN_FILE" .jsonl)
echo "chaos drill: resuming $RUN_ID"

# A replacement worker joins the survivor; a fresh coordinator resumes.
W3_PID=$(start_worker "$WORKDIR/w3.ready")
wait_ready "$WORKDIR/w3.ready"
ENDPOINTS2="$(cat "$WORKDIR/w2.ready"),$(cat "$WORKDIR/w3.ready")"
python -m repro accuracy mascot phast "${GRID[@]}" --uops "$UOPS" \
    --no-cache --retries 3 --journal-dir "$JOURNALS" \
    --workers "$ENDPOINTS2" --resume "$RUN_ID" >"$WORKDIR/resumed.out"

# Bit-identical to a clean serial run with no journal and no workers.
python -m repro accuracy mascot phast "${GRID[@]}" --uops "$UOPS" \
    --no-cache --no-journal >"$WORKDIR/clean.out"
diff "$WORKDIR/resumed.out" "$WORKDIR/clean.out"
echo "chaos drill: merged results bit-identical after worker kill" \
     "and coordinator restart"
